"""Tests for the simlint invariant checker (SL001–SL013).

Each rule gets a positive test (a known-bad fixture it must flag) and a
negative test (the sanctioned variant it must pass).  Fixtures live in
``tests/simlint_fixtures/`` and are planted into a temporary tree that
mirrors the package layout — ``lint_paths(root=...)`` then scopes their
dotted names exactly like the real ``src/repro`` tree, which is how the
layer- and module-scoped rules see them.  The per-module rules use
single-file fixtures; the dataflow rules (SL010–SL013) use fixture
*trees*, since their whole point is cross-module reasoning.
"""

import json
import pickle
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.devtools.simlint import SourceError, lint_paths
from repro.devtools.simlint.cli import main as simlint_main
from repro.devtools.simlint.dataflow import AnalysisCache, get_analysis
from repro.devtools.simlint.engine import load_modules
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "simlint_fixtures"
REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: (bad fixture, clean fixture, destination inside the fake tree, code)
RULE_CASES = [
    ("sl001_bad.py", "sl001_ok.py", "repro/core/clock.py", "SL001"),
    ("sl002_bad.py", "sl002_ok.py", "repro/core/hooks.py", "SL002"),
    ("sl003_bad.py", "sl003_ok.py", "repro/experiments/errors.py",
     "SL003"),
    ("sl004_bad_stats.py", "sl004_ok_stats.py", "repro/core/stats.py",
     "SL004"),
    ("sl005_bad_executor.py", "sl005_ok_executor.py",
     "repro/experiments/executor.py", "SL005"),
    ("sl006_bad.py", "sl006_ok.py", "repro/experiments/pool_utils.py",
     "SL006"),
    ("sl007_bad.py", "sl007_ok.py", "repro/analysis/timed_render.py",
     "SL007"),
    ("sl008_bad.py", "sl008_ok.py", "repro/mop/matrix_detect.py",
     "SL008"),
    ("sl009_bad.py", "sl009_ok.py", "repro/service/handlers.py",
     "SL009"),
]


#: (bad tree, clean tree, code, [(rel path, line) expected findings])
TREE_CASES = [
    ("sl010_bad", "sl010_ok", "SL010",
     [("repro/experiments/collect.py", 11),
      ("repro/experiments/collect.py", 19)]),
    ("sl011_bad", "sl011_ok", "SL011",
     [("repro/service/poller.py", 8)]),
    ("sl012_bad", "sl012_ok", "SL012",
     [("repro/experiments/pool_worker.py", 13),
      ("repro/experiments/pool_worker.py", 17)]),
    ("sl013_bad", "sl013_ok", "SL013",
     [("repro/service/server.py", 13)]),
]


def plant(tmp_path, fixture, dest_rel):
    """Copy *fixture* to *dest_rel* inside a fake package tree."""
    dest = tmp_path / dest_rel
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text((FIXTURES / fixture).read_text(encoding="utf-8"),
                    encoding="utf-8")
    return dest


def plant_tree(tmp_path, tree):
    """Copy a multi-file fixture tree wholesale into *tmp_path*."""
    shutil.copytree(FIXTURES / tree, tmp_path, dirs_exist_ok=True)
    return tmp_path


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "bad,ok,dest,code", RULE_CASES,
        ids=[case[3] for case in RULE_CASES])
    def test_bad_fixture_is_flagged(self, tmp_path, bad, ok, dest, code):
        plant(tmp_path, bad, dest)
        findings = lint_paths([tmp_path], root=tmp_path)
        assert findings, f"{bad} produced no findings"
        assert {f.code for f in findings} == {code}

    @pytest.mark.parametrize(
        "bad,ok,dest,code", RULE_CASES,
        ids=[case[3] for case in RULE_CASES])
    def test_clean_fixture_passes(self, tmp_path, bad, ok, dest, code):
        plant(tmp_path, ok, dest)
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl002_flags_class_body_import_too(self, tmp_path):
        plant(tmp_path, "sl002_bad.py", "repro/core/hooks.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        # The top-level `from repro.trace...` import and the eager
        # class-body `import repro.experiments` are both violations.
        assert len(findings) == 2

    def test_sl005_reports_all_three_defects(self, tmp_path):
        plant(tmp_path, "sl005_bad_executor.py",
              "repro/experiments/executor.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        messages = " ".join(f.message for f in findings)
        assert "max_cycles" in messages          # forgotten field
        assert "asdict" in messages              # config hashed as str
        assert "stale" in messages               # 'colour' exclusion

    def test_rules_ignore_modules_outside_their_layer(self, tmp_path):
        # The same wall-clock calls are fine outside core/mop/memory:
        # SL001 polices the simulated machine, not the tooling around it.
        plant(tmp_path, "sl001_bad.py", "repro/experiments/timing.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl006_exempts_the_fault_harness(self, tmp_path):
        plant(tmp_path, "sl006_bad.py", "repro/experiments/faults.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl007_exempts_the_measurement_layer(self, tmp_path):
        # The same wall-clock reads are the whole point inside the perf
        # subsystem, the executor and the bench harness.
        plant(tmp_path, "sl007_bad.py", "repro/perf/collector_extra.py")
        plant(tmp_path, "sl007_bad.py", "repro/experiments/timers.py")
        plant(tmp_path, "sl007_bad.py", "benchmarks/warmup.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl007_defers_the_core_to_sl001(self, tmp_path):
        # One bad call inside repro.core must yield exactly one finding
        # (SL001's), not an SL001+SL007 double report.
        plant(tmp_path, "sl007_bad.py", "repro/core/clocked.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert findings
        assert {f.code for f in findings} == {"SL001"}

    def test_sl007_flags_every_wall_clock_read(self, tmp_path):
        plant(tmp_path, "sl007_bad.py", "repro/trace/latency.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        # time.perf_counter(), the from-import perf_counter() and
        # time.time() are three distinct violations.
        assert len(findings) == 3
        assert {f.code for f in findings} == {"SL007"}

    def test_sl008_exempts_the_backend_package(self, tmp_path):
        # The vectorized kernel is the one sanctioned numpy home.
        plant(tmp_path, "sl008_bad.py",
              "repro/core/backend/vector_extra.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl008_flags_lazy_imports_too(self, tmp_path):
        # Unlike SL002, confinement is total: the module-level import,
        # the from-import and the function-local import are three
        # distinct violations.
        plant(tmp_path, "sl008_bad.py", "repro/core/pipeline_extra.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert len(findings) == 3
        assert {f.code for f in findings} == {"SL008"}

    def test_sl009_flags_every_blocking_call(self, tmp_path):
        plant(tmp_path, "sl009_bad.py", "repro/service/handlers.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        # time.sleep, the from-import sleep, subprocess.run and
        # socket.create_connection are four distinct violations.
        assert len(findings) == 4
        assert {f.code for f in findings} == {"SL009"}

    def test_sl009_only_polices_the_service_layer(self, tmp_path):
        # The same calls outside repro.service are someone else's
        # business (the executor blocks in worker threads by design).
        plant(tmp_path, "sl009_bad.py", "repro/experiments/pool_aux.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl009_ignores_sync_functions_in_service(self, tmp_path):
        # The synchronous CLI client lives in repro.service and blocks
        # by design; only coroutine bodies are policed.
        source = (
            "import time\n"
            "\n"
            "\n"
            "def poll() -> None:\n"
            "    time.sleep(0.1)\n"
        )
        target = tmp_path / "repro" / "service" / "client_extra.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        assert lint_paths([tmp_path], root=tmp_path) == []


class TestDataflowRules:
    """SL010–SL013: cross-module findings on multi-file fixture trees."""

    @pytest.mark.parametrize(
        "bad,ok,code,expected", TREE_CASES,
        ids=[case[2] for case in TREE_CASES])
    def test_bad_tree_produces_exact_findings(self, tmp_path, bad, ok,
                                              code, expected):
        plant_tree(tmp_path, bad)
        findings = lint_paths([tmp_path], root=tmp_path)
        assert {f.code for f in findings} == {code}
        located = sorted(
            (Path(f.path).relative_to(tmp_path).as_posix(), f.line)
            for f in findings)
        assert located == sorted(expected)

    @pytest.mark.parametrize(
        "bad,ok,code,expected", TREE_CASES,
        ids=[case[2] for case in TREE_CASES])
    def test_clean_tree_passes(self, tmp_path, bad, ok, code, expected):
        plant_tree(tmp_path, ok)
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl001_misses_the_transitive_taint(self, tmp_path):
        # The two-hop flow SL010 flags is invisible to the per-module
        # determinism rule: the source sits in repro.perf (outside
        # SL001's layers) and the sink module never calls time.* itself.
        plant_tree(tmp_path, "sl010_bad")
        assert lint_paths([tmp_path], root=tmp_path,
                          select=["SL001"]) == []

    def test_sl009_misses_the_transitive_blocking(self, tmp_path):
        # The coroutine contains no blocking call of its own, so the
        # direct-only SL009 stays quiet; only the call-graph walk sees
        # the time.sleep two edges away.
        plant_tree(tmp_path, "sl011_bad")
        assert lint_paths([tmp_path], root=tmp_path,
                          select=["SL009"]) == []

    def test_sl010_message_names_label_and_sink(self, tmp_path):
        plant_tree(tmp_path, "sl010_bad")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert all("wall-clock" in f.message and "SimStats" in f.message
                   for f in findings)

    def test_sl011_message_names_the_witness_chain(self, tmp_path):
        plant_tree(tmp_path, "sl011_bad")
        [finding] = lint_paths([tmp_path], root=tmp_path)
        assert "backoff" in finding.message
        assert "time.sleep" in finding.message

    def test_sl013_reports_only_the_unjournalled_branch(self, tmp_path):
        plant_tree(tmp_path, "sl013_bad")
        [finding] = lint_paths([tmp_path], root=tmp_path)
        assert finding.line == 13  # the fast path; the slow ack is safe


class TestIncrementalCache:
    def _analysis(self, tmp_path, cache):
        project = load_modules([tmp_path], root=tmp_path)
        project.analysis_cache = cache
        return get_analysis(project)

    def test_warm_run_reanalyzes_nothing(self, tmp_path):
        plant_tree(tmp_path, "sl010_bad")
        cache = AnalysisCache(tmp_path / "cache.json")
        cold = self._analysis(tmp_path, cache)
        assert cold.reanalyzed == {"repro.core.stats",
                                   "repro.experiments.collect",
                                   "repro.perf.wallclock"}
        warm = self._analysis(tmp_path, cache)
        assert warm.reanalyzed == set()

    def test_touch_invalidates_module_and_dependents(self, tmp_path):
        plant_tree(tmp_path, "sl010_bad")
        cache = AnalysisCache(tmp_path / "cache.json")
        self._analysis(tmp_path, cache)
        target = tmp_path / "repro" / "perf" / "wallclock.py"
        target.write_text(target.read_text(encoding="utf-8")
                          + "\n# touched\n", encoding="utf-8")
        warm = self._analysis(tmp_path, cache)
        # The touched module plus its importer — but not the sibling
        # sink-class module, which never depends on either.
        assert warm.reanalyzed == {"repro.perf.wallclock",
                                   "repro.experiments.collect"}

    def test_warm_findings_match_cold(self, tmp_path):
        plant_tree(tmp_path, "sl010_bad")
        cache = AnalysisCache(tmp_path / "cache.json")
        cold = lint_paths([tmp_path], root=tmp_path, cache=cache)
        warm = lint_paths([tmp_path], root=tmp_path, cache=cache)
        assert [(f.code, f.path, f.line) for f in warm] \
            == [(f.code, f.path, f.line) for f in cold]

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        plant_tree(tmp_path, "sl013_bad")
        path = tmp_path / "cache.json"
        path.write_text("{definitely not json", encoding="utf-8")
        findings = lint_paths([tmp_path], root=tmp_path,
                              cache=AnalysisCache(path))
        assert {f.code for f in findings} == {"SL013"}


class TestSuppressions:
    def test_directive_anywhere_in_a_multiline_statement(self, tmp_path):
        dest = tmp_path / "repro" / "core" / "clock.py"
        dest.parent.mkdir(parents=True)
        dest.write_text(
            "import time\n"
            "\n"
            "\n"
            "def now():\n"
            "    return time.time(\n"
            "    )  # simlint: disable=SL001\n",
            encoding="utf-8")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_directive_silences_its_code(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def t() -> float:\n"
            "    return time.time()  # simlint: disable=SL001\n"
        )
        target = tmp_path / "repro" / "core" / "clock.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_directive_is_per_code(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def t() -> float:\n"
            "    return time.time()  # simlint: disable=SL006\n"
        )
        target = tmp_path / "repro" / "core" / "clock.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        findings = lint_paths([tmp_path], root=tmp_path)
        assert [f.code for f in findings] == ["SL001"]

    def test_disable_all(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def t() -> float:\n"
            "    return time.time()  # simlint: disable=all\n"
        )
        target = tmp_path / "repro" / "core" / "clock.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        assert lint_paths([tmp_path], root=tmp_path) == []


class TestHead:
    def test_head_tree_is_clean(self):
        findings = lint_paths([REPO_SRC / "repro"], root=REPO_SRC)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"simlint findings at HEAD:\n{rendered}"


class TestEngine:
    def test_syntax_error_raises_source_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(SourceError):
            lint_paths([tmp_path], root=tmp_path)

    def test_source_error_pickles(self):
        exc = SourceError(Path("x.py"), "bad syntax")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.path == exc.path
        assert clone.reason == exc.reason

    def test_module_names_strip_src_layout(self, tmp_path):
        from repro.devtools.simlint import load_modules
        target = tmp_path / "src" / "repro" / "core" / "stats.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        project = load_modules([tmp_path], root=tmp_path)
        assert project.module("repro.core.stats") is not None

    def test_select_restricts_rules(self, tmp_path):
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        assert lint_paths([tmp_path], root=tmp_path,
                          select=["SL002"]) == []


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 1
        assert "SL001" in capsys.readouterr().out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        plant(tmp_path, "sl001_ok.py", "repro/core/clock.py")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 0
        assert "simlint: clean" in capsys.readouterr().out

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 2
        assert "simlint: error" in capsys.readouterr().err

    def test_json_report_and_output_file(self, tmp_path, capsys):
        plant(tmp_path, "sl005_bad_executor.py",
              "repro/experiments/executor.py")
        out = tmp_path / "report" / "simlint.json"
        code = simlint_main([str(tmp_path), "--root", str(tmp_path),
                             "--format", "json",
                             "--output", str(out)])
        assert code == 1
        document = json.loads(out.read_text())
        assert document["tool"] == "simlint"
        assert document["total"] == len(document["findings"]) > 0
        assert set(document["rules"]) == {
            "SL001", "SL002", "SL003", "SL004", "SL005", "SL006",
            "SL007", "SL008", "SL009", "SL010", "SL011", "SL012",
            "SL013"}
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert simlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SL001", "SL002", "SL003", "SL004", "SL005",
                     "SL006", "SL007", "SL008", "SL009", "SL010",
                     "SL011", "SL012", "SL013"):
            assert code in out

    def test_sarif_format(self, tmp_path, capsys):
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path),
                             "--format", "sarif", "--no-cache"])
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"SL001", "SL010", "SL011", "SL012", "SL013"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "SL001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "repro/core/clock.py")
        assert location["region"]["startLine"] >= 1

    def test_sarif_companion_file(self, tmp_path, capsys):
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        sarif = tmp_path / "report" / "simlint.sarif"
        code = simlint_main([str(tmp_path), "--root", str(tmp_path),
                             "--sarif", str(sarif), "--no-cache"])
        assert code == 1
        log = json.loads(sarif.read_text(encoding="utf-8"))
        results = log["runs"][0]["results"]
        assert results and {r["ruleId"] for r in results} == {"SL001"}
        assert "SL001" in capsys.readouterr().out  # text gate unchanged

    def test_changed_requires_a_git_checkout(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.chdir(tmp_path)
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path),
                             "--changed", "--no-cache"])
        assert code == 2
        assert "--changed" in capsys.readouterr().err

    def test_changed_filters_to_touched_files(self, tmp_path, monkeypatch,
                                              capsys):
        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        subprocess.run(["git", "add", "."], cwd=tmp_path, check=True)
        subprocess.run(["git", "-c", "user.email=ci@local",
                        "-c", "user.name=ci", "commit", "-qm", "seed"],
                       cwd=tmp_path, check=True)
        # Committed finding: real, but not changed vs HEAD — filtered.
        code = simlint_main([str(tmp_path), "--root", str(tmp_path),
                             "--changed", "--no-cache"])
        assert code == 0
        capsys.readouterr()
        # A new untracked offender is reported; the old one stays out.
        plant(tmp_path, "sl009_bad.py", "repro/service/handlers.py")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path),
                             "--changed", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 1
        assert "SL009" in out
        assert "SL001" not in out

    def test_repro_lint_subcommand_forwards(self, tmp_path, capsys):
        plant(tmp_path, "sl006_bad.py", "repro/experiments/pool.py")
        code = repro_main(["lint", str(tmp_path),
                           "--root", str(tmp_path)])
        assert code == 1
        assert "SL006" in capsys.readouterr().out

    def test_repro_lint_subcommand_select(self, tmp_path, capsys):
        plant(tmp_path, "sl006_bad.py", "repro/experiments/pool.py")
        code = repro_main(["lint", str(tmp_path),
                           "--root", str(tmp_path),
                           "--select", "SL001"])
        assert code == 0
        capsys.readouterr()

    def test_repro_lint_subcommand_forwards_sarif(self, tmp_path, capsys):
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        sarif = tmp_path / "simlint.sarif"
        code = repro_main(["lint", str(tmp_path), "--root", str(tmp_path),
                           "--no-cache", "--sarif", str(sarif)])
        assert code == 1
        assert json.loads(sarif.read_text(encoding="utf-8"))["version"] \
            == "2.1.0"
        capsys.readouterr()
