"""Unit tests for the synthetic workload generator."""

import pytest

from repro.isa.opcodes import OpClass
from repro.workloads import generate_trace, get_profile
from repro.workloads.synthetic import SyntheticWorkload


@pytest.fixture(scope="module")
def gap_workload():
    return SyntheticWorkload(get_profile("gap"), seed=1, static_size=512)


class TestStaticProgram:
    def test_requested_size_plus_wrap_jump(self, gap_workload):
        assert len(gap_workload.slots) == 513
        assert gap_workload.slots[-1].op_class is OpClass.JUMP
        assert gap_workload.slots[-1].target == 0

    def test_slots_have_sequential_pcs(self, gap_workload):
        for i, slot in enumerate(gap_workload.slots):
            assert slot.pc == i

    def test_contains_loopback_branches(self, gap_workload):
        loopbacks = [s for s in gap_workload.slots if s.is_loopback]
        assert loopbacks, "bodies must close with loop-back branches"
        for slot in loopbacks:
            assert slot.target is not None and slot.target < slot.pc

    def test_branch_targets_in_range(self, gap_workload):
        for slot in gap_workload.slots:
            if slot.target is not None:
                assert 0 <= slot.target <= len(gap_workload.slots) - 1

    def test_stores_carry_data_source(self, gap_workload):
        stores = [s for s in gap_workload.slots
                  if s.op_class is OpClass.STORE_ADDR]
        assert stores
        for slot in stores:
            assert slot.store_data_src is not None


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(get_profile("gzip"), 2000, seed=3)
        b = generate_trace(get_profile("gzip"), 2000, seed=3)
        assert [(op.pc, op.op_class, op.srcs, op.dest) for op in a.ops] == \
               [(op.pc, op.op_class, op.srcs, op.dest) for op in b.ops]
        assert [op.mispred_hint for op in a.ops] == \
               [op.mispred_hint for op in b.ops]

    def test_different_seeds_differ(self):
        a = generate_trace(get_profile("gzip"), 2000, seed=3)
        b = generate_trace(get_profile("gzip"), 2000, seed=4)
        assert [op.taken for op in a.ops] != [op.taken for op in b.ops]

    def test_different_benchmarks_differ(self):
        a = generate_trace(get_profile("gap"), 1000, seed=1)
        b = generate_trace(get_profile("vortex"), 1000, seed=1)
        assert [op.op_class for op in a.ops] != \
               [op.op_class for op in b.ops]


class TestDynamicWalk:
    def test_requested_instruction_count(self):
        trace = generate_trace(get_profile("bzip"), 3000)
        assert trace.committed_insts == 3000

    def test_mix_tracks_profile(self):
        profile = get_profile("crafty")
        trace = generate_trace(profile, 20_000)
        hist = trace.class_histogram()
        insts = trace.committed_insts
        loads = hist.get(OpClass.LOAD, 0) / insts
        stores = hist.get(OpClass.STORE_ADDR, 0) / insts
        assert loads == pytest.approx(profile.frac_load, abs=0.06)
        assert stores == pytest.approx(profile.frac_store, abs=0.04)

    def test_mispredict_rate_tracks_profile(self):
        profile = get_profile("parser")
        trace = generate_trace(profile, 20_000)
        branches = [op for op in trace.ops
                    if op.op_class is OpClass.BRANCH]
        rate = sum(op.mispred_hint for op in branches) / len(branches)
        assert rate == pytest.approx(profile.mispredict_rate, abs=0.01)

    def test_load_hints_track_miss_rate(self):
        profile = get_profile("mcf")
        trace = generate_trace(profile, 20_000)
        loads = [op for op in trace.ops if op.is_load]
        miss = sum(1 for op in loads if op.mem_hint > 0) / len(loads)
        assert miss == pytest.approx(profile.dl1_miss_rate, abs=0.03)

    def test_pcs_repeat_for_pointer_reuse(self):
        trace = generate_trace(get_profile("gap"), 10_000)
        pcs = {op.pc for op in trace.ops}
        # Loops revisit PCs: far fewer unique PCs than dynamic ops.
        assert len(pcs) < len(trace.ops) / 2

    def test_sources_have_writers_or_are_entry_regs(self):
        """Every source register is either written earlier in the trace or
        belongs to the small entry-initialized set."""
        trace = generate_trace(get_profile("twolf"), 5000)
        written = set()
        entry_ok = set(range(0, 27)) | set(range(32, 62))
        for op in trace.ops:
            for src in op.srcs:
                assert src in written or src in entry_ok
            if op.dest is not None:
                written.add(op.dest)


class TestLoopCarriers:
    def test_loop_carried_dependence_exists(self):
        """Some register must be read at a slot before its writer slot —
        the loop-carried pattern (read at body top, written at bottom)."""
        workload = SyntheticWorkload(get_profile("gap"), seed=1,
                                     static_size=512)
        writers = {}
        for slot in workload.slots:
            if slot.dest is not None and slot.dest not in writers:
                writers[slot.dest] = slot.pc
        carried = 0
        for slot in workload.slots:
            for src in slot.srcs:
                writer_pc = writers.get(src)
                if writer_pc is not None and writer_pc > slot.pc:
                    carried += 1
        assert carried > 0

    def test_parallel_bodies_possible(self):
        profile = get_profile("eon")  # parallel_body_frac = 0.3
        assert profile.parallel_body_frac > 0
