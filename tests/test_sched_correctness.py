"""Scheduler-correctness regression sweep: ready-set and slot accounting.

Three latent-bug classes that differential testing between the backends
flushed out or nearly could have:

* ready-heap double entry — an entry rescinded and re-woken in the same
  window used to be pushed twice, growing the heap without bound under
  replay storms and double-scanning every select;
* pileup-victim slot burning — Section 6.5 requires a scoreboard pileup
  victim to consume a real issue slot (that is precisely why the
  scoreboard configuration loses more than squash-dep);
* FU-blocked requeue fairness — an entry deferred on a busy functional
  unit must keep its oldest-first (seq, eid) priority, not rotate to
  the back of the ready set.

These invariants are asserted on the golden reference; the parity suite
(tests/test_backend_parity.py) then carries them to the numpy backend.
"""

from repro.core import MachineConfig, SchedulerKind, simulate
from repro.core.issue_queue import ISSUED
from repro.core.pipeline import Processor
from repro.core.stats import REPLAY_PILEUP
from repro.trace import RingBufferSink
from repro.workloads import generate_trace, get_profile
from tests.conftest import TraceBuilder


class _AuditProcessor(Processor):
    """Reference processor with per-cycle ready-heap invariant checks."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_heap_size = 0
        self.double_issues = 0

    def _cycle(self):
        super()._cycle()
        if len(self._ready_heap) > self.max_heap_size:
            self.max_heap_size = len(self._ready_heap)
        seen = set()
        for seq, eid, _entry in self._ready_heap:
            assert (seq, eid) not in seen, \
                f"duplicate heap entry (seq={seq}, eid={eid}) at {self.now}"
            seen.add((seq, eid))

    def _issue(self, entry, now, fu_avail):
        if entry.state == ISSUED:
            self.double_issues += 1
        super()._issue(entry, now, fu_avail)


def _audit_run(trace, config):
    proc = _AuditProcessor(config, trace)
    proc.run()
    return proc


class TestReadyHeapDedupe:
    def test_rescind_rewake_never_double_issues(self):
        # A missing load rescinds its speculatively-woken consumers;
        # the real broadcast re-wakes them.  The re-wake must reuse the
        # existing heap residency, never push a duplicate that a later
        # select could pop into a second issue.
        tb = TraceBuilder()
        tb.load(dest=1, base=9, mem_hint=2)   # misses to memory
        for reg in range(2, 10):
            tb.alu(dest=reg, srcs=(reg - 1,))
        proc = _audit_run(tb.build(), MachineConfig())
        assert proc.double_issues == 0
        assert proc.stats.replayed_ops > 0  # the rescind path really ran

    def test_heap_bounded_under_replay_storm(self):
        # Select-free scoreboard on a missy workload replays heavily;
        # without dedupe the heap grows monotonically with every
        # rescind -> rewake pair.  With it, residency is bounded by the
        # number of in-flight entries.
        trace = generate_trace(get_profile("mcf"), 600, seed=13)
        config = MachineConfig(
            scheduler=SchedulerKind.SELECT_FREE_SCOREBOARD, iq_size=32)
        proc = _audit_run(trace, config)
        assert proc.stats.replayed_ops > 100  # genuinely stormy
        # +1: the macro-op split recovery path may force one entry past
        # capacity; stale WAITING residents are bounded by live entries.
        assert proc.max_heap_size <= 2 * 32 + 1


class TestPileupSlotBurning:
    def test_pileup_victim_consumes_issue_slot(self):
        # Section 6.5: the scoreboard notices a pileup victim *after*
        # select, so the victim's slot is spent — on any cycle, issued
        # entries plus burned slots can never exceed machine width.
        trace = generate_trace(get_profile("gap"), 800, seed=2)
        sink = RingBufferSink()
        config = MachineConfig(
            scheduler=SchedulerKind.SELECT_FREE_SCOREBOARD)
        stats = simulate(trace, config, sink=sink)
        assert stats.pileup_victims > 0  # the burn path really ran
        per_cycle: dict = {}
        for e in sink.events:
            if (e.kind == "issue"
                    or (e.kind == "replay" and e.cause == REPLAY_PILEUP)):
                per_cycle[e.cycle] = per_cycle.get(e.cycle, 0) + 1
        assert max(per_cycle.values()) <= config.width
        # The bound binds: some cycle spends its full issue bandwidth.
        assert max(per_cycle.values()) == config.width

    def test_pileup_victims_counted_once_per_burn(self):
        trace = generate_trace(get_profile("gap"), 800, seed=2)
        sink = RingBufferSink()
        stats = simulate(
            trace,
            MachineConfig(scheduler=SchedulerKind.SELECT_FREE_SCOREBOARD),
            sink=sink)
        burns = sum(1 for e in sink.events
                    if e.kind == "replay" and e.cause == REPLAY_PILEUP)
        assert stats.pileup_victims == burns > 0


class TestFuBlockedFairness:
    def test_fu_blocked_entries_issue_oldest_first(self):
        # Four independent multiplies, one multiplier: they become ready
        # together and must issue strictly in (seq) order as the unit
        # frees up — a deferred entry keeps its priority.
        tb = TraceBuilder()
        for i in range(4):
            tb.mult(dest=1 + i, srcs=())
        sink = RingBufferSink()
        simulate(tb.build(),
                 MachineConfig(int_mult_count=1), sink=sink)
        issues = [(e.cycle, e.seq) for e in sink.events
                  if e.kind == "issue"]
        assert len(issues) == 4
        # One per cycle (single unit), in program order.
        assert issues == sorted(issues)
        seqs = [seq for _cycle, seq in issues]
        assert seqs == sorted(seqs)
        cycles = [cycle for cycle, _seq in issues]
        assert len(set(cycles)) == 4

    def test_fu_contention_never_starves(self):
        # A steady stream competing for one multiplier: every op still
        # commits, and wakeup->select delay stays bounded by the queue
        # drain, not unbounded (rotation starvation would blow it up).
        tb = TraceBuilder()
        for i in range(24):
            tb.mult(dest=1 + (i % 8), srcs=())
        stats = simulate(tb.build(), MachineConfig(int_mult_count=1))
        assert stats.committed_ops == 24
