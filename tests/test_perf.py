"""Perf-profiling integration: collector, CLI, store and bench timings.

These run real (tiny) simulations through the experiment executor, so
they prove the whole measurement path end to end: collect a profile,
save it as ``BENCH_<sha>.json``, gate a candidate against it via the
CLI, and render the trajectory report.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.core import MachineConfig, SchedulerKind
from repro.experiments.executor import Executor, ResultCache
from repro.perf import (
    DETERMINISTIC_COUNTERS,
    PERF_TARGETS,
    PerfProfile,
    bench_timings_payload,
    collect_profile,
    current_sha,
    discover_profiles,
    load_profiles,
    render_trajectory,
)
from repro.perf.collector import CollectionError

BENCH = ["gap"]
N = 300
REPS = 2


@pytest.fixture(scope="module")
def profile():
    return collect_profile(quick=True, repetitions=REPS, num_insts=N,
                           benchmarks=BENCH, sha="testsha")


class TestCollect:
    def test_measures_every_target(self, profile):
        assert set(profile.targets) == {t.name for t in PERF_TARGETS}
        for target in profile.targets.values():
            assert len(target.cells_per_sec) == REPS
            assert all(v > 0 for v in target.cells_per_sec)
            assert target.cells == len(BENCH) * len(target.configs)

    def test_counters_are_complete_and_positive(self, profile):
        for target in profile.targets.values():
            assert set(target.counters) == set(DETERMINISTIC_COUNTERS)
            assert target.counters["cycles"] > 0
            assert target.counters["committed_insts"] > 0

    def test_collection_is_deterministic(self):
        again = collect_profile(quick=True, repetitions=1, num_insts=N,
                                benchmarks=BENCH, sha="testsha2")
        once = collect_profile(quick=True, repetitions=1, num_insts=N,
                               benchmarks=BENCH, sha="testsha2")
        for name in again.targets:
            assert (again.targets[name].counters
                    == once.targets[name].counters)

    def test_cache_exercise_warm_pass_hits_every_cell(self, profile):
        executor = profile.executor
        assert executor["cold_cells"] == executor["warm_cells"] > 0
        assert executor["cold_hits"] == 0
        assert executor["warm_hits"] == executor["warm_cells"]
        assert executor["warm_misses"] == 0

    def test_calibration_recorded(self, profile):
        assert len(profile.calibration_seconds) == 3
        assert all(s > 0 for s in profile.calibration_seconds)

    def test_sha_and_lane_recorded(self, profile):
        assert profile.sha == "testsha"
        assert profile.quick is True
        assert profile.num_insts == N
        assert profile.backend == "python"

    def test_backend_threaded_to_every_executor(self):
        built = []

        class RecordingExecutor(Executor):
            def __init__(self, **kwargs):
                built.append(kwargs.get("backend"))
                super().__init__(**kwargs)

        profile = collect_profile(quick=True, repetitions=1, num_insts=N,
                                  benchmarks=BENCH, sha="x",
                                  backend="python",
                                  executor_factory=RecordingExecutor)
        assert profile.backend == "python"
        assert built and set(built) == {"python"}

    def test_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_SHA", "deadbee")
        assert current_sha() == "deadbee"

    def test_failed_cell_aborts_collection(self):
        from repro.experiments.executor import FailedStats

        class FailingExecutor(Executor):
            def run_grid(self, *args, **kwargs):
                grid = super().run_grid(*args, **kwargs)
                label = next(iter(grid))
                bench = next(iter(grid[label]))
                grid[label][bench] = FailedStats(f"{bench}/{label}")
                return grid

        with pytest.raises(CollectionError, match="FAILED"):
            collect_profile(quick=True, repetitions=1, num_insts=N,
                            benchmarks=BENCH, sha="x",
                            executor_factory=FailingExecutor)

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            collect_profile(repetitions=0)


class TestStore:
    def test_save_load_round_trip(self, profile, tmp_path):
        path = profile.save(tmp_path / "BENCH_testsha.json")
        clone = PerfProfile.load(path)
        assert clone.to_dict() == profile.to_dict()

    def test_discover_ignores_other_json(self, profile, tmp_path):
        profile.save(tmp_path / "BENCH_testsha.json")
        (tmp_path / "notes.json").write_text("{}")
        found = discover_profiles(tmp_path)
        assert [p.name for p in found] == ["BENCH_testsha.json"]

    def test_load_profiles_skips_corrupt_unless_strict(self, profile,
                                                       tmp_path):
        profile.save(tmp_path / "BENCH_good.json")
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        paths = discover_profiles(tmp_path)
        assert len(paths) == 2
        loaded = load_profiles(paths)
        assert [p.sha for p in loaded] == ["testsha"]
        with pytest.raises(Exception):
            load_profiles(paths, strict=True)

    def test_discover_searches_upward_when_asked(self, profile, tmp_path):
        # A baseline-only checkout viewed from a subdirectory must still
        # root the trajectory at the committed baseline.
        profile.save(tmp_path / "BENCH_baseline.json")
        subdir = tmp_path / "src" / "repro"
        subdir.mkdir(parents=True)
        assert discover_profiles(subdir) == []
        found = discover_profiles(subdir, search_up=True)
        assert [p.name for p in found] == ["BENCH_baseline.json"]

    def test_load_profiles_dedupes_promoted_baseline(self, profile,
                                                     tmp_path):
        # Promotion is `cp BENCH_<sha>.json BENCH_baseline.json`: the
        # same measurement under two filenames is one trajectory row.
        profile.save(tmp_path / "BENCH_testsha.json")
        profile.save(tmp_path / "BENCH_baseline.json")
        loaded = load_profiles(discover_profiles(tmp_path))
        assert len(loaded) == 1


class TestReportTrajectory:
    def test_report_from_subdir_renders_baseline_row(self, profile,
                                                     tmp_path, capsys,
                                                     monkeypatch):
        # Regression: with only BENCH_baseline.json at the root and the
        # command run from a subdirectory, the report used to come back
        # empty (exit 2); the upward search makes the baseline the
        # trajectory root.
        profile.save(tmp_path / "BENCH_baseline.json")
        subdir = tmp_path / "analysis"
        subdir.mkdir()
        monkeypatch.chdir(subdir)
        code = repro_main(["perf", "report"])
        assert code == 0
        report = capsys.readouterr().out
        assert "testsha" in report


class TestCli:
    def test_run_then_check_then_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_baseline.json"
        code = repro_main(["perf", "run", "--quick",
                           "--reps", "1", "--insts", str(N),
                           "--benchmarks", "gap",
                           "--sha", "baseline", "--out", str(out)])
        assert code == 0
        assert out.exists()
        capsys.readouterr()

        code = repro_main(["perf", "check", "--baseline", str(out),
                           "--candidate", str(out)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

        code = repro_main(["perf", "report", str(out)])
        assert code == 0
        report = capsys.readouterr().out
        assert "baseline" in report
        assert "quick" in report

    def test_check_against_fresh_collection(self, tmp_path, capsys):
        # No --candidate: check re-measures with the baseline's own
        # settings.  Timings differ but counters must match exactly.
        out = tmp_path / "BENCH_baseline.json"
        repro_main(["perf", "run", "--quick", "--reps", "1",
                    "--insts", str(N), "--benchmarks", "gap",
                    "--sha", "baseline", "--out", str(out)])
        code = repro_main(["perf", "check", "--baseline", str(out),
                           "--threshold", "100"])
        output = capsys.readouterr().out
        assert code == 0, output
        assert "PASS" in output

    def test_report_renders_trajectory_dir(self, tmp_path, capsys):
        for sha in ("aaa1111", "bbb2222"):
            repro_main(["perf", "run", "--quick", "--reps", "1",
                        "--insts", str(N), "--benchmarks", "gap",
                        "--sha", sha, "--out",
                        str(tmp_path / f"BENCH_{sha}.json")])
        capsys.readouterr()
        code = repro_main(["perf", "report", "--dir", str(tmp_path)])
        assert code == 0
        report = capsys.readouterr().out
        assert "aaa1111" in report and "bbb2222" in report

    def test_report_empty_dir_errors(self, tmp_path, capsys):
        code = repro_main(["perf", "report", "--dir", str(tmp_path)])
        assert code == 2
        assert "no perf profiles" in capsys.readouterr().err


class TestTrajectory:
    def test_render_is_a_markdown_table(self, profile):
        text = render_trajectory([profile])
        assert text.startswith("| sha |")
        assert "| testsha |" in text
        assert "cells/s" in text
        assert "quick" in text


class TestBenchTimings:
    """The bench harness bugfix: timings are a *post-session* snapshot."""

    def grid(self):
        return {"base": MachineConfig.paper_default(
            scheduler=SchedulerKind.BASE)}

    def test_payload_reflects_post_session_state(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = Executor(jobs=1, cache=cache)

        # The buggy revision snapshotted here — before any work ran —
        # and would report 0 cells / 0 hits forever after.
        stale = dict(executor.counters())
        assert stale["cells"] == 0 and stale["cache_hits"] == 0

        executor.run_grid(self.grid(), BENCH, N, seed=1)   # cold
        executor.run_grid(self.grid(), BENCH, N, seed=1)   # warm

        payload = bench_timings_payload(
            executor, durations={"bench_x": 1.25}, meta={"insts": N})
        counters = payload["executor"]
        assert counters["cells"] == 2
        assert counters["cache_hits"] == 1
        assert counters["hit_rate"] == 0.5
        assert counters["cache_gets_hit"] == 1
        assert payload["targets"] == {"bench_x": 1.25}
        assert payload["meta"] == {"insts": N}
        assert payload["schema"] == 1
        assert counters["per_cell_seconds"]

    def test_write_bench_timings_is_valid_json(self, tmp_path):
        executor = Executor(jobs=1, cache=None)
        executor.run_grid(self.grid(), BENCH, N, seed=1)
        from repro.perf.session import write_bench_timings
        path = write_bench_timings(tmp_path / "timings.json", executor)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "repro-bench-timings"
        assert payload["executor"]["cells"] == 1


class TestExecutorCounters:
    def test_counters_without_cache(self):
        executor = Executor(jobs=1, cache=None)
        executor.run_grid(self.grid(), BENCH, N, seed=1)
        counters = executor.counters()
        assert counters["cells"] == 1
        assert counters["simulated"] == 1
        assert counters["failed"] == 0
        assert counters["wall_seconds"] > 0
        assert "cache_gets_hit" not in counters

    def grid(self):
        return {"base": MachineConfig.paper_default(
            scheduler=SchedulerKind.BASE)}
