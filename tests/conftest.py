"""Shared test fixtures and trace-building helpers."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.isa.instruction import DynInst, crack_store
from repro.isa.opcodes import OpClass
from repro.workloads.trace import Trace


class TraceBuilder:
    """Fluent builder for hand-crafted dynamic traces.

    PCs default to the op's position, so every op has a distinct PC (no
    pointer reuse) unless a PC is given explicitly.
    """

    def __init__(self) -> None:
        self.ops: List[DynInst] = []

    def _next(self) -> Tuple[int, int]:
        return len(self.ops), len(self.ops)

    def alu(self, dest: Optional[int] = None, srcs: Tuple[int, ...] = (),
            pc: Optional[int] = None) -> "TraceBuilder":
        seq, default_pc = self._next()
        self.ops.append(DynInst(
            seq=seq, pc=pc if pc is not None else default_pc,
            op_class=OpClass.INT_ALU, dest=dest, srcs=srcs, mnemonic="alu"))
        return self

    def load(self, dest: int, base: int, mem_hint: int = 0,
             addr: Optional[int] = None,
             pc: Optional[int] = None) -> "TraceBuilder":
        seq, default_pc = self._next()
        self.ops.append(DynInst(
            seq=seq, pc=pc if pc is not None else default_pc,
            op_class=OpClass.LOAD, dest=dest, srcs=(base,),
            mem_addr=addr, mem_hint=mem_hint, mnemonic="lw"))
        return self

    def store(self, addr_src: int, data_src: int,
              pc: Optional[int] = None) -> "TraceBuilder":
        seq, default_pc = self._next()
        addr_op, data_op = crack_store(
            seq=seq, pc=pc if pc is not None else default_pc,
            addr_srcs=(addr_src,), data_src=data_src)
        self.ops.append(addr_op)
        self.ops.append(data_op)
        return self

    def branch(self, src: int, taken: bool = False,
               target: Optional[int] = None, mispred: bool = False,
               pc: Optional[int] = None) -> "TraceBuilder":
        seq, default_pc = self._next()
        use_pc = pc if pc is not None else default_pc
        self.ops.append(DynInst(
            seq=seq, pc=use_pc, op_class=OpClass.BRANCH, srcs=(src,),
            taken=taken, target_pc=target if target is not None
            else use_pc + 1,
            mispred_hint=mispred, mnemonic="br"))
        return self

    def mult(self, dest: int, srcs: Tuple[int, ...],
             pc: Optional[int] = None) -> "TraceBuilder":
        seq, default_pc = self._next()
        self.ops.append(DynInst(
            seq=seq, pc=pc if pc is not None else default_pc,
            op_class=OpClass.INT_MULT, dest=dest, srcs=srcs,
            mnemonic="mul"))
        return self

    def build(self, name: str = "test") -> Trace:
        return Trace(name, self.ops)


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep the on-disk experiment result cache out of ``~/.cache``.

    Anything in the suite that builds a :class:`ResultCache` without an
    explicit directory (the CLI does) lands in a per-test tmp dir, so
    tests never read stale results from a previous code version.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def tb() -> TraceBuilder:
    return TraceBuilder()


def chain_trace(length: int, loop: bool = False) -> Trace:
    """A pure serial chain of 1-cycle ALU ops: op i reads op i-1's dest.

    The worst case for pipelined scheduling — every dependent pair should
    be groupable into MOPs.  With ``loop=True`` the same two PCs repeat so
    MOP pointers get reuse.
    """
    builder = TraceBuilder()
    for i in range(length):
        reg = 1 + (i % 2)
        prev = 1 + ((i + 1) % 2)
        pc = (i % 4) if loop else None
        builder.alu(dest=reg, srcs=(prev,), pc=pc)
    return builder.build("chain")


def independent_trace(length: int) -> Trace:
    """Fully independent single-cycle ops: maximal ILP, no chains."""
    builder = TraceBuilder()
    for i in range(length):
        builder.alu(dest=1 + (i % 24), srcs=())
    return builder.build("independent")
