"""Unit tests for the branch prediction substrate."""

import pytest

from repro.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    CombinedPredictor,
    GsharePredictor,
    ReturnAddressStack,
)


class TestBimodal:
    def test_trains_toward_taken(self):
        pred = BimodalPredictor(64)
        for _ in range(3):
            pred.update(4, True)
        assert pred.predict(4)

    def test_trains_toward_not_taken(self):
        pred = BimodalPredictor(64)
        for _ in range(3):
            pred.update(4, False)
        assert not pred.predict(4)

    def test_hysteresis(self):
        pred = BimodalPredictor(64)
        for _ in range(4):
            pred.update(4, True)
        pred.update(4, False)  # single anomaly must not flip a saturated
        assert pred.predict(4)

    def test_counter_saturates(self):
        pred = BimodalPredictor(64)
        for _ in range(10):
            pred.update(0, True)
        assert pred.counter(0) == 3
        for _ in range(10):
            pred.update(0, False)
        assert pred.counter(0) == 0

    def test_aliasing_by_table_size(self):
        pred = BimodalPredictor(16)
        for _ in range(3):
            pred.update(0, True)
        assert pred.predict(16)  # same table slot

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(48)


class TestGshare:
    def test_learns_alternating_pattern(self):
        """gshare should learn T,N,T,N... where bimodal cannot."""
        pred = GsharePredictor(1024)
        outcome = True
        correct = 0
        for i in range(200):
            guess = pred.predict(12)
            checkpoint = pred.speculate(guess)
            if guess == outcome:
                if i >= 100:
                    correct += 1
            pred.update(12, checkpoint, outcome)
            if guess != outcome:
                pred.repair_history(checkpoint, outcome)
            outcome = not outcome
        assert correct > 90  # near-perfect after warmup

    def test_history_repair(self):
        pred = GsharePredictor(256)
        checkpoint = pred.speculate(True)
        pred.repair_history(checkpoint, False)
        mask = (1 << pred.history_bits) - 1
        assert pred.history == ((checkpoint << 1) | 0) & mask

    def test_speculate_shifts_history(self):
        pred = GsharePredictor(256)
        pred.speculate(True)
        assert pred.history & 1 == 1
        pred.speculate(False)
        assert pred.history & 1 == 0


class TestCombined:
    def test_predicts_biased_branch(self):
        pred = CombinedPredictor(256, 256, 256)
        for _ in range(8):
            prediction = pred.predict(40)
            pred.update(40, prediction, True)
        assert pred.predict(40).taken

    def test_selector_learns_to_prefer_gshare(self):
        """On an alternating branch only gshare is right; the selector
        must migrate toward it."""
        pred = CombinedPredictor(1024, 1024, 1024)
        outcome = True
        for _ in range(300):
            prediction = pred.predict(8)
            pred.update(8, prediction, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(100):
            prediction = pred.predict(8)
            pred.update(8, prediction, outcome)
            if prediction.taken == outcome:
                hits += 1
            outcome = not outcome
        assert hits > 80

    def test_prediction_carries_components(self):
        pred = CombinedPredictor()
        prediction = pred.predict(0)
        assert prediction.bimodal_taken in (True, False)
        assert prediction.gshare_taken in (True, False)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(100) is None
        btb.install(100, 7)
        assert btb.lookup(100) == 7

    def test_update_existing(self):
        btb = BranchTargetBuffer(64, 4)
        btb.install(100, 7)
        btb.install(100, 9)
        assert btb.lookup(100) == 9

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets, 2 ways
        sets = btb.sets
        pcs = [0, sets, 2 * sets]  # all map to set 0
        btb.install(pcs[0], 1)
        btb.install(pcs[1], 2)
        btb.lookup(pcs[0])          # refresh LRU
        btb.install(pcs[2], 3)      # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[2]) == 3

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 4)


class TestRAS:
    def test_lifo_order(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1

    def test_empty_pop_returns_none(self):
        assert ReturnAddressStack(4).pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None
