"""Tests for trace serialization round-trips."""

import pytest

from repro.core import MachineConfig, SchedulerKind, simulate
from repro.workloads import generate_trace, get_profile
from repro.workloads.kernels import kernel_trace
from repro.workloads.serialize import dump_trace, load_trace


def roundtrip(trace, tmp_path):
    path = tmp_path / "trace.txt"
    dump_trace(trace, path)
    return load_trace(path)


class TestRoundTrip:
    def test_synthetic_trace_identical(self, tmp_path):
        original = generate_trace(get_profile("gap"), 1200)
        loaded = roundtrip(original, tmp_path)
        assert loaded.name == original.name
        assert len(loaded) == len(original)
        for a, b in zip(original.ops, loaded.ops):
            assert (a.seq, a.pc, a.op_class, a.dest, a.srcs, a.taken,
                    a.target_pc, a.mispred_hint, a.mem_hint,
                    a.counts_as_inst) == \
                   (b.seq, b.pc, b.op_class, b.dest, b.srcs, b.taken,
                    b.target_pc, b.mispred_hint, b.mem_hint,
                    b.counts_as_inst)

    def test_kernel_trace_roundtrip(self, tmp_path):
        original = kernel_trace("vector_sum")
        loaded = roundtrip(original, tmp_path)
        assert loaded.committed_insts == original.committed_insts

    def test_simulation_identical_after_reload(self, tmp_path):
        """The timing model must not distinguish a reloaded trace."""
        original = generate_trace(get_profile("gzip"), 1500)
        loaded = roundtrip(original, tmp_path)
        config = MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP, warm_caches=True)
        a = simulate(original, config)
        b = simulate(loaded, config)
        assert (a.cycles, a.mops_formed, a.replayed_ops) == \
               (b.cycles, b.mops_formed, b.replayed_ops)


class TestErrors:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("not-a-trace\n")
        with pytest.raises(ValueError, match="reprotrace"):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("reprotrace-v1 t\n1 2 3\n")
        with pytest.raises(ValueError, match=":2"):
            load_trace(path)
