"""Cycle-accurate timing tests for the pipeline's scheduling laws.

These tests pin down the Figure 5 semantics end to end: dependent
single-cycle chains run at 1 op/cycle under base scheduling, 1 op/2 cycles
under 2-cycle scheduling, and recover to ~1 op/cycle under macro-op
scheduling once pointers exist.
"""

import pytest

from repro.core import MachineConfig, SchedulerKind, simulate
from tests.conftest import TraceBuilder, chain_trace, independent_trace


def cfg(sched, **kw):
    kw.setdefault("iq_size", None)
    return MachineConfig(scheduler=sched, **kw)


class TestChainThroughput:
    """Serial single-cycle chains expose the scheduling loop directly."""

    def test_base_runs_chain_back_to_back(self):
        trace = chain_trace(200)
        stats = simulate(trace, cfg(SchedulerKind.BASE))
        # 1 op per cycle plus pipeline fill: cycles ≈ length + depth.
        assert stats.cycles <= 200 + 25

    def test_two_cycle_halves_chain_throughput(self):
        trace = chain_trace(200)
        base = simulate(trace, cfg(SchedulerKind.BASE))
        two = simulate(trace, cfg(SchedulerKind.TWO_CYCLE))
        # Every edge costs 2 cycles instead of 1.
        assert two.cycles >= base.cycles + 170
        assert two.cycles <= 2 * 200 + 30

    def test_macro_op_recovers_chain_throughput(self):
        # Looping PCs so MOP pointers are detected and then reused.
        trace = chain_trace(400, loop=True)
        two = simulate(trace, cfg(SchedulerKind.TWO_CYCLE))
        mop = simulate(trace, cfg(SchedulerKind.MACRO_OP))
        base = simulate(trace, cfg(SchedulerKind.BASE))
        assert mop.cycles < two.cycles - 100
        # Paired chain: alternating intra-MOP (fast) and tail-consumer
        # (back-to-back) edges approach base throughput.
        assert mop.cycles <= base.cycles * 1.2 + 40

    def test_independent_ops_insensitive_to_discipline(self):
        trace = independent_trace(400)
        base = simulate(trace, cfg(SchedulerKind.BASE))
        two = simulate(trace, cfg(SchedulerKind.TWO_CYCLE))
        assert two.cycles <= base.cycles + 5

    def test_width_limits_independent_throughput(self):
        trace = independent_trace(400)
        stats = simulate(trace, cfg(SchedulerKind.BASE))
        # 4-wide machine: at least length/4 cycles.
        assert stats.cycles >= 100


class TestMultiCycleOps:
    def test_two_cycle_hides_behind_mult_latency(self, tb):
        """Multiply (3-cycle) chains: pipelined scheduling costs nothing."""
        for i in range(60):
            tb.mult(dest=1, srcs=(1,))
        trace = tb.build()
        base = simulate(trace, cfg(SchedulerKind.BASE))
        two = simulate(trace, cfg(SchedulerKind.TWO_CYCLE))
        assert two.cycles == base.cycles

    def test_mult_chain_spacing(self, tb):
        for i in range(50):
            tb.mult(dest=1, srcs=(1,))
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        # 3 cycles per link.
        assert stats.cycles >= 150


class TestCommitAccounting:
    def test_all_instructions_commit(self, tb):
        for i in range(20):
            tb.alu(dest=1 + i % 4, srcs=())
        tb.store(addr_src=1, data_src=2)
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.committed_insts == 21      # store counts once
        assert stats.committed_ops == 22        # both halves commit

    def test_every_scheduler_commits_everything(self):
        trace = chain_trace(100, loop=True)
        for sched in SchedulerKind:
            stats = simulate(trace, cfg(sched))
            assert stats.committed_insts == 100, sched

    def test_ipc_definition(self, tb):
        for i in range(12):
            tb.alu(dest=1 + i % 4)
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.ipc == pytest.approx(12 / stats.cycles)


class TestBranchHandling:
    def test_mispredict_costs_at_least_minimum_penalty(self, tb):
        config = cfg(SchedulerKind.BASE)
        for i in range(8):
            tb.alu(dest=1 + i % 4)
        baseline = simulate(tb.build(), config).cycles

        tb2 = TraceBuilder()
        for i in range(4):
            tb2.alu(dest=1 + i % 4)
        tb2.branch(src=1, taken=False, mispred=True)
        for i in range(4):
            tb2.alu(dest=1 + i % 4)
        with_misp = simulate(tb2.build(), config).cycles
        assert with_misp >= baseline + config.min_mispredict_penalty - 4

    def test_correct_prediction_costs_nothing_extra(self, tb):
        tb.alu(dest=1)
        tb.branch(src=1, taken=False, mispred=False)
        for i in range(8):
            tb.alu(dest=1 + i % 4)
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.mispredicted_branches == 0

    def test_taken_branch_breaks_fetch_group(self, tb):
        # 40 taken branches, each ends its fetch group: ≥ 1 cycle each.
        for i in range(40):
            tb.branch(src=1, taken=True, mispred=False)
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.cycles >= 40

    def test_branch_stats_counted(self, tb):
        tb.branch(src=1, taken=False, mispred=True)
        tb.branch(src=1, taken=False, mispred=False)
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.branches == 2
        assert stats.mispredicted_branches == 1


class TestLoadReplay:
    def test_dl1_hit_consumer_timing(self, tb):
        tb.load(dest=1, base=0, mem_hint=0)
        tb.alu(dest=2, srcs=(1,))
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.replayed_ops == 0
        assert stats.loads == 1

    def test_miss_triggers_selective_replay(self, tb):
        """A consumer issued in the load shadow must be replayed."""
        tb.load(dest=1, base=0, mem_hint=1)   # L2 hit: DL1 miss
        tb.alu(dest=2, srcs=(1,))             # woken speculatively
        tb.alu(dest=3, srcs=(2,))             # transitively dependent
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.dl1_load_misses == 1
        assert stats.replayed_ops >= 1

    def test_miss_latency_visible_in_cycles(self, tb):
        tb.load(dest=1, base=0, mem_hint=0)
        tb.alu(dest=2, srcs=(1,))
        hit_cycles = simulate(tb.build(), cfg(SchedulerKind.BASE)).cycles

        tb2 = TraceBuilder()
        tb2.load(dest=1, base=0, mem_hint=2)  # memory access
        tb2.alu(dest=2, srcs=(1,))
        miss_cycles = simulate(tb2.build(), cfg(SchedulerKind.BASE)).cycles
        assert miss_cycles >= hit_cycles + 90

    def test_independent_work_overlaps_miss(self, tb):
        tb.load(dest=1, base=0, mem_hint=2)
        for i in range(100):
            tb.alu(dest=2 + i % 4)
        tb.alu(dest=10, srcs=(1,))
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        # The 100 independent ALUs hide inside the ~110-cycle miss.
        assert stats.cycles <= 160

    def test_l2_stats(self, tb):
        tb.load(dest=1, base=0, mem_hint=2)
        tb.load(dest=2, base=0, mem_hint=1)
        tb.load(dest=3, base=0, mem_hint=0)
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.loads == 3
        assert stats.dl1_load_misses == 2
        assert stats.l2_load_misses == 1


class TestIssueQueuePressure:
    def test_small_queue_never_deadlocks(self):
        trace = chain_trace(300)
        stats = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.BASE, iq_size=4))
        assert stats.committed_insts == 300

    def test_unrestricted_at_least_as_fast(self):
        trace = chain_trace(300, loop=True)
        small = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.BASE, iq_size=8))
        big = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.BASE, iq_size=None))
        assert big.cycles <= small.cycles

    def test_rob_bounds_inflight(self):
        trace = independent_trace(200)
        stats = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.BASE, rob_size=16, iq_size=None))
        assert stats.committed_insts == 200


class TestWatchdogAndDrain:
    def test_pipeline_drains_empty_trace(self, tb):
        stats = simulate(tb.build(), cfg(SchedulerKind.BASE))
        assert stats.cycles == 0 or stats.committed_insts == 0

    def test_max_cycles_cap(self):
        trace = chain_trace(1000)
        stats = simulate(trace, cfg(SchedulerKind.BASE), max_cycles=50)
        assert stats.cycles == 50
