"""Unit tests for issue-queue entries and occupancy tracking."""

import pytest

from repro.core.issue_queue import WAITING, IQEntry, IssueQueue
from repro.core.uop import Uop
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


def make_uop(seq=0, dest=1, srcs=()):
    inst = DynInst(seq=seq, pc=seq, op_class=OpClass.INT_ALU, dest=dest,
                   srcs=srcs)
    return Uop(inst, fetch_cycle=0)


class TestIQEntry:
    def test_fresh_entry_state(self):
        entry = IQEntry(make_uop(), sched_latency=1)
        assert entry.state == WAITING
        assert entry.tail is None
        assert not entry.is_mop
        assert entry.all_sources_ready()   # no operands registered yet

    def test_add_operand_indexing(self):
        entry = IQEntry(make_uop(), sched_latency=1)
        idx0 = entry.add_operand(None, ready=True, tail_only=False)
        idx1 = entry.add_operand(None, ready=False, tail_only=True)
        assert (idx0, idx1) == (0, 1)
        assert not entry.all_sources_ready()

    def test_pending_blocks_readiness(self):
        entry = IQEntry(make_uop(), sched_latency=2)
        entry.pending_tail = True
        assert not entry.all_sources_ready()
        entry.pending_tail = False
        assert entry.all_sources_ready()

    def test_attach_tail(self):
        entry = IQEntry(make_uop(seq=0), sched_latency=2)
        entry.pending_tail = True
        tail = make_uop(seq=1, dest=2)
        entry.attach_tail(tail)
        assert entry.tail is tail
        assert entry.is_mop
        assert not entry.pending_tail
        assert tail.entry is entry

    def test_entry_ids_unique(self):
        a = IQEntry(make_uop(seq=0), 1)
        b = IQEntry(make_uop(seq=1), 1)
        assert a.eid != b.eid


class TestLastArrival:
    def _mop_entry(self):
        entry = IQEntry(make_uop(seq=0), sched_latency=2)
        entry.is_mop = True
        entry.mop_kind = "dependent"
        tail = make_uop(seq=1, dest=2)
        entry.uops.append(tail)
        return entry

    def test_tail_only_last_arrival_detected(self):
        entry = self._mop_entry()
        entry.add_operand(None, ready=True, tail_only=False, ready_cycle=5)
        entry.add_operand(None, ready=True, tail_only=True, ready_cycle=9)
        assert entry.last_arriving_is_tail_only()

    def test_head_last_arrival_not_flagged(self):
        entry = self._mop_entry()
        entry.add_operand(None, ready=True, tail_only=False, ready_cycle=9)
        entry.add_operand(None, ready=True, tail_only=True, ready_cycle=5)
        assert not entry.last_arriving_is_tail_only()

    def test_tie_not_flagged(self):
        entry = self._mop_entry()
        entry.add_operand(None, ready=True, tail_only=False, ready_cycle=7)
        entry.add_operand(None, ready=True, tail_only=True, ready_cycle=7)
        assert not entry.last_arriving_is_tail_only()

    def test_independent_mop_never_flagged(self):
        entry = self._mop_entry()
        entry.mop_kind = "independent"
        entry.add_operand(None, ready=True, tail_only=True, ready_cycle=9)
        assert not entry.last_arriving_is_tail_only()

    def test_solo_entry_never_flagged(self):
        entry = IQEntry(make_uop(), sched_latency=1)
        entry.add_operand(None, ready=True, tail_only=False, ready_cycle=3)
        assert not entry.last_arriving_is_tail_only()


class TestIssueQueue:
    def test_capacity_enforced(self):
        queue = IssueQueue(capacity=2)
        queue.allocate(IQEntry(make_uop(seq=0), 1))
        queue.allocate(IQEntry(make_uop(seq=1), 1))
        assert not queue.has_space()
        with pytest.raises(RuntimeError):
            queue.allocate(IQEntry(make_uop(seq=2), 1))

    def test_force_overrides_capacity(self):
        queue = IssueQueue(capacity=1)
        queue.allocate(IQEntry(make_uop(seq=0), 1))
        queue.allocate(IQEntry(make_uop(seq=1), 1), force=True)
        assert len(queue) == 2

    def test_release_frees_space(self):
        queue = IssueQueue(capacity=1)
        entry = IQEntry(make_uop(), 1)
        queue.allocate(entry)
        queue.release(entry)
        assert queue.has_space()
        queue.release(entry)   # double release is a no-op
        assert len(queue) == 0

    def test_unrestricted_always_has_space(self):
        queue = IssueQueue(capacity=None)
        for i in range(200):
            queue.allocate(IQEntry(make_uop(seq=i), 1))
        assert queue.has_space(50)
