"""Unit tests for static/dynamic instruction records."""

from repro.isa.instruction import DynInst, StaticInst, crack_store
from repro.isa.opcodes import OpClass
from repro.isa.registers import FP_ZERO_REG, ZERO_REG


class TestDynInst:
    def test_zero_register_sources_filtered(self):
        op = DynInst(seq=0, pc=0, op_class=OpClass.INT_ALU, dest=1,
                     srcs=(2, ZERO_REG))
        assert op.srcs == (2,)

    def test_zero_register_dest_discarded(self):
        op = DynInst(seq=0, pc=0, op_class=OpClass.INT_ALU, dest=ZERO_REG)
        assert op.dest is None
        assert not op.has_dest

    def test_fp_zero_register_filtered(self):
        op = DynInst(seq=0, pc=0, op_class=OpClass.FP_ALU,
                     dest=FP_ZERO_REG, srcs=(FP_ZERO_REG,))
        assert op.dest is None
        assert op.srcs == ()

    def test_next_pc_fallthrough(self):
        op = DynInst(seq=0, pc=10, op_class=OpClass.INT_ALU)
        assert op.next_pc == 11

    def test_next_pc_taken_branch(self):
        op = DynInst(seq=0, pc=10, op_class=OpClass.BRANCH,
                     taken=True, target_pc=3)
        assert op.next_pc == 3

    def test_not_taken_branch_falls_through(self):
        op = DynInst(seq=0, pc=10, op_class=OpClass.BRANCH,
                     taken=False, target_pc=3)
        assert op.next_pc == 11

    def test_candidate_classification(self):
        alu = DynInst(seq=0, pc=0, op_class=OpClass.INT_ALU, dest=1)
        assert alu.is_mop_candidate and alu.is_valuegen_candidate
        load = DynInst(seq=1, pc=1, op_class=OpClass.LOAD, dest=2,
                       srcs=(1,))
        assert not load.is_mop_candidate
        branch = DynInst(seq=2, pc=2, op_class=OpClass.BRANCH, srcs=(1,))
        assert branch.is_mop_candidate and not branch.is_valuegen_candidate

    def test_dead_alu_is_still_valuegen(self):
        # "Value-generating" depends on writing a register, not on readers.
        op = DynInst(seq=0, pc=0, op_class=OpClass.INT_ALU, dest=5)
        assert op.is_valuegen_candidate


class TestCrackStore:
    def test_store_cracks_into_two_ops(self):
        addr_op, data_op = crack_store(seq=7, pc=3, addr_srcs=(4,),
                                       data_src=9, mem_addr=100)
        assert addr_op.op_class is OpClass.STORE_ADDR
        assert data_op.op_class is OpClass.STORE_DATA
        assert addr_op.srcs == (4,)
        assert data_op.srcs == (9,)

    def test_halves_share_pc(self):
        addr_op, data_op = crack_store(seq=0, pc=42, addr_srcs=(1,),
                                       data_src=2)
        assert addr_op.pc == data_op.pc == 42

    def test_sequence_numbers_consecutive(self):
        addr_op, data_op = crack_store(seq=5, pc=0, addr_srcs=(1,),
                                       data_src=2)
        assert data_op.seq == addr_op.seq + 1

    def test_only_addr_half_counts_as_instruction(self):
        addr_op, data_op = crack_store(seq=0, pc=0, addr_srcs=(1,),
                                       data_src=2)
        assert addr_op.counts_as_inst
        assert not data_op.counts_as_inst

    def test_addr_half_is_candidate_data_half_is_not(self):
        addr_op, data_op = crack_store(seq=0, pc=0, addr_srcs=(1,),
                                       data_src=2)
        assert addr_op.is_mop_candidate
        assert not data_op.is_mop_candidate


class TestStaticInst:
    def test_str_renders_operands(self):
        inst = StaticInst("add", OpClass.INT_ALU, dest=1, srcs=(2, 3))
        assert "add" in str(inst)
        assert "r1" in str(inst)

    def test_frozen(self):
        inst = StaticInst("add", OpClass.INT_ALU, dest=1)
        try:
            inst.dest = 2
            raised = False
        except AttributeError:
            raised = True
        assert raised
