"""Unit tests for the cache and memory hierarchy models."""

import pytest

from repro.memory import Cache, MemoryHierarchy, MemoryLevel


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache("t", 1024, 2, 64, latency=2)
        assert not cache.access(0)
        assert cache.access(0)

    def test_same_line_hits(self):
        cache = Cache("t", 1024, 2, 64, latency=2)
        cache.access(0)
        assert cache.access(63)     # same 64B line
        assert not cache.access(64)  # next line

    def test_lru_eviction_within_set(self):
        cache = Cache("t", 2 * 64 * 4, 2, 64, latency=1)  # 4 sets, 2 ways
        stride = cache.num_sets * cache.line_bytes
        cache.access(0)
        cache.access(stride)
        cache.access(0)              # refresh
        cache.access(2 * stride)     # evicts `stride`
        assert cache.probe(0)
        assert not cache.probe(stride)
        assert cache.probe(2 * stride)

    def test_stats_track_hits_and_misses(self):
        cache = Cache("t", 1024, 2, 64, latency=2)
        cache.access(0)
        cache.access(0)
        cache.access(128)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_flush_invalidates(self):
        cache = Cache("t", 1024, 2, 64, latency=2)
        cache.access(0)
        cache.flush()
        assert not cache.probe(0)

    def test_probe_does_not_disturb(self):
        cache = Cache("t", 1024, 2, 64, latency=2)
        cache.probe(0)
        assert cache.stats.accesses == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("t", 1000, 3, 64, latency=1)


class TestHierarchy:
    def test_paper_default_latencies(self):
        h = MemoryHierarchy()
        assert h.dl1.latency == 2
        assert h.l2.latency == 8
        assert h.memory_latency == 100

    def test_hint_paths(self):
        h = MemoryHierarchy()
        lat_dl1, level = h.load_latency(None, hint=0)
        assert level is MemoryLevel.DL1 and lat_dl1 == 2
        lat_l2, level = h.load_latency(None, hint=1)
        assert level is MemoryLevel.L2 and lat_l2 == 10
        lat_mem, level = h.load_latency(None, hint=2)
        assert level is MemoryLevel.MEMORY and lat_mem == 110

    def test_address_path_cold_then_warm(self):
        h = MemoryHierarchy()
        lat, level = h.load_latency(0x1000)
        assert level is MemoryLevel.MEMORY
        lat, level = h.load_latency(0x1000)
        assert level is MemoryLevel.DL1
        assert lat == h.dl1.latency

    def test_l2_serves_after_dl1_eviction(self):
        h = MemoryHierarchy()
        h.load_latency(0)          # install everywhere
        # Evict line 0 from the 4-way DL1 set by touching 4 conflicting
        # lines (DL1 has 64 sets of 64B lines → stride 4096).
        for i in range(1, 5):
            h.load_latency(i * 64 * h.dl1.num_sets)
        lat, level = h.load_latency(0)
        assert level is MemoryLevel.L2

    def test_no_hint_no_address_assumes_hit(self):
        h = MemoryHierarchy()
        lat, level = h.load_latency(None)
        assert level is MemoryLevel.DL1

    def test_store_commit_installs_line(self):
        h = MemoryHierarchy()
        h.store_commit(0x40)
        lat, level = h.load_latency(0x40)
        assert level is MemoryLevel.DL1

    def test_fetch_latency_warms_il1(self):
        h = MemoryHierarchy()
        cold = h.fetch_latency(0)
        warm = h.fetch_latency(0)
        assert cold > warm == h.il1.latency

    def test_dl1_hit_latency_property(self):
        assert MemoryHierarchy().dl1_hit_latency == 2
