"""Randomized differential harness: numpy backend vs golden reference.

The contract of :mod:`repro.core.backend` is **bit identity** — for any
trace and any :class:`MachineConfig`, both backends produce the same
:class:`SimStats` field for field, emit the same trace events when
instrumented, and raise the same picklable error at the same cycle when
the run fails.  This suite enforces that contract on seeded synthetic
workloads across every scheduling discipline, which is also what makes
it safe for the experiment executor to leave ``backend`` out of its
cache key.

The numpy-dependent tests skip (not fail) on hosts without numpy: the
pure-Python reference is the portable model, and the default CI lane
deliberately runs without numpy installed.
"""

import filecmp
import pickle
from dataclasses import asdict, replace

import pytest

from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.core.backend import get_backend
from repro.core.pipeline import DeadlockError, ReplayStormError
from repro.trace import JsonlTraceSink
from repro.workloads import generate_trace, get_profile
from tests.conftest import TraceBuilder

requires_numpy = pytest.mark.skipif(
    not get_backend("numpy").available(),
    reason="numpy backend not available on this host")

#: Every discipline, with the wakeup styles that matter to it.
DISCIPLINES = (
    ("base", SchedulerKind.BASE, None),
    ("2-cycle", SchedulerKind.TWO_CYCLE, None),
    ("macro-op-2src", SchedulerKind.MACRO_OP, WakeupStyle.CAM_2SRC),
    ("macro-op-wor", SchedulerKind.MACRO_OP, WakeupStyle.WIRED_OR),
    ("sf-squash", SchedulerKind.SELECT_FREE_SQUASH, None),
    ("sf-scoreboard", SchedulerKind.SELECT_FREE_SCOREBOARD, None),
)

#: Seeded corpus: (workload profile, generator seed, instruction count).
#: Three profiles with different stall characters — gap is issue-bound,
#: mcf is memory-bound (exercises the idle fast-forward), gcc is
#: branchy — times distinct seeds for generator-level variety.
CORPUS = (
    ("gap", 1, 900),
    ("gap", 17, 900),
    ("mcf", 5, 900),
    ("gcc", 11, 900),
)


def _config(kind, wakeup, **overrides):
    kwargs = {"scheduler": kind, "iq_size": overrides.pop("iq_size", 32)}
    if wakeup is not None:
        kwargs["wakeup_style"] = wakeup
    kwargs.update(overrides)
    return MachineConfig(**kwargs)


def _both(trace, config, **simulate_kwargs):
    py = simulate(trace, replace(config, backend="python"),
                  **simulate_kwargs)
    np_ = simulate(trace, replace(config, backend="numpy"),
                   **simulate_kwargs)
    return py, np_


@requires_numpy
@pytest.mark.parametrize("label,kind,wakeup",
                         DISCIPLINES, ids=[d[0] for d in DISCIPLINES])
@pytest.mark.parametrize("workload,seed,n",
                         CORPUS, ids=[f"{c[0]}-s{c[1]}" for c in CORPUS])
def test_stats_bit_identical(workload, seed, n, label, kind, wakeup):
    trace = generate_trace(get_profile(workload), n, seed=seed)
    py, np_ = _both(trace, _config(kind, wakeup))
    assert asdict(py) == asdict(np_)


@requires_numpy
def test_stats_bit_identical_unrestricted_iq():
    # iq_size=None (Figure 14's unrestricted queue) grows the ready set
    # far past the vector/scalar threshold, exercising the numpy scan.
    trace = generate_trace(get_profile("gcc"), 1200, seed=3)
    config = _config(SchedulerKind.SELECT_FREE_SQUASH, None, iq_size=None)
    py, np_ = _both(trace, config)
    assert asdict(py) == asdict(np_)


@requires_numpy
def test_stats_bit_identical_long_memory_latency():
    # Deep memory stalls maximize the idle fast-forward; every skipped
    # cycle must still accrue the same per-cycle counters.
    trace = generate_trace(get_profile("mcf"), 900, seed=7)
    config = _config(SchedulerKind.BASE, None, memory_latency=400)
    py, np_ = _both(trace, config)
    assert asdict(py) == asdict(np_)


@requires_numpy
@pytest.mark.parametrize("label,kind,wakeup", [
    ("base", SchedulerKind.BASE, None),
    ("macro-op-wor", SchedulerKind.MACRO_OP, WakeupStyle.WIRED_OR),
    ("sf-scoreboard", SchedulerKind.SELECT_FREE_SCOREBOARD, None),
], ids=["base", "macro-op-wor", "sf-scoreboard"])
def test_traces_byte_identical(tmp_path, label, kind, wakeup):
    # Instrumented runs must emit the same events in the same order —
    # wakeups, selects, squashes, replays — not just the same totals.
    trace = generate_trace(get_profile("gap"), 700, seed=9)
    paths = []
    for backend in ("python", "numpy"):
        path = tmp_path / f"{backend}.jsonl"
        sink = JsonlTraceSink(str(path))
        try:
            simulate(trace, replace(_config(kind, wakeup),
                                    backend=backend), sink=sink)
        finally:
            sink.close()
        paths.append(path)
    assert filecmp.cmp(*map(str, paths), shallow=False), \
        f"trace divergence for {label}"


def _miss_chain_trace():
    """A load that misses to memory plus a dependent chain: replays."""
    tb = TraceBuilder()
    tb.load(dest=1, base=9, mem_hint=2)
    tb.alu(dest=2, srcs=(1,))
    tb.alu(dest=3, srcs=(2,))
    return tb.build()


@requires_numpy
def test_replay_storm_error_parity():
    # With replay_limit=0 the first replay aborts the run; both backends
    # must fail at the same cycle with the same payload, and the error
    # must survive the executor's pickle boundary intact.
    trace = _miss_chain_trace()
    errors = []
    for backend in ("python", "numpy"):
        config = MachineConfig(replay_limit=0, backend=backend)
        with pytest.raises(ReplayStormError) as info:
            simulate(trace, config)
        errors.append(pickle.loads(pickle.dumps(info.value)))
    py, np_ = errors
    assert type(py) is type(np_)
    assert py.args == np_.args
    assert (py.cycle, py.seq, py.pc, py.replays) \
        == (np_.cycle, np_.seq, np_.pc, np_.replays)


@requires_numpy
def test_deadlock_error_parity(monkeypatch):
    # Force the watchdog with a tiny bound and a miss longer than it;
    # the numpy backend's fast-forward must arrive at the same watchdog
    # cycle the reference reaches one cycle at a time, with the same
    # machine snapshot in the payload.
    import repro.core.backend.numpy_kernel as numpy_kernel
    import repro.core.pipeline as pipeline
    monkeypatch.setattr(pipeline, "WATCHDOG_CYCLES", 60)
    monkeypatch.setattr(numpy_kernel, "WATCHDOG_CYCLES", 60)
    trace = _miss_chain_trace()
    errors = []
    for backend in ("python", "numpy"):
        config = MachineConfig(memory_latency=5000, backend=backend)
        with pytest.raises(DeadlockError) as info:
            simulate(trace, config)
        errors.append(pickle.loads(pickle.dumps(info.value)))
    py, np_ = errors
    assert type(py) is type(np_)
    assert py.args == np_.args
    assert py.cycle == np_.cycle
    assert py.pending == np_.pending


def test_python_backend_needs_no_numpy():
    # The reference path must be importable and runnable on hosts
    # without numpy: selecting backend="python" may not import the
    # numpy kernel module (lazy loaders in repro.core.backend).
    import sys
    trace = _miss_chain_trace()
    preloaded = "repro.core.backend.numpy_kernel" in sys.modules
    simulate(trace, MachineConfig(backend="python"))
    if not preloaded:
        assert "repro.core.backend.numpy_kernel" not in sys.modules


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        MachineConfig(backend="fortran")
