"""Correctness tests for the computational kernels (functional results)."""


from repro.core import MachineConfig, SchedulerKind, simulate
from repro.isa.interpreter import Interpreter
from repro.workloads.kernels import (
    histogram,
    kernel_trace,
    matrix_multiply,
    string_match,
    vector_sum,
)


class TestMatrixMultiply:
    def test_result_matches_reference(self):
        n = 4
        interp = Interpreter(matrix_multiply(n))
        list(interp.run())
        a = list(range(n * n))
        b = [i + 1 for i in range(n * n)]
        for i in range(n):
            for j in range(n):
                expected = sum(a[i * n + k] * b[k * n + j]
                               for k in range(n))
                got = interp.memory.get(2 * n * n + i * n + j)
                assert got == expected, (i, j)

    def test_runs_through_pipeline(self):
        trace = kernel_trace("matrix_multiply")
        stats = simulate(trace, MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP))
        assert stats.committed_insts > 2000
        assert stats.mops_formed > 0


class TestHistogram:
    def test_bucket_counts_sum_to_samples(self):
        interp = Interpreter(histogram(buckets=8, samples=96))
        list(interp.run())
        total = sum(interp.memory.get(100 + b, 0) for b in range(8))
        assert total == 96

    def test_read_modify_write_dependences(self):
        """Histogram loads feed stores of the same address — the trace
        must carry those addresses for the real-cache path."""
        trace = kernel_trace("histogram")
        loads = [op for op in trace.ops if op.is_load]
        assert all(op.mem_addr is not None for op in loads)


class TestStringMatch:
    def test_match_count_correct(self):
        interp = Interpreter(string_match(hay=64, pattern=4))
        list(interp.run())
        haystack = [i % 7 for i in range(64)]
        needle = [3, 4, 5, 6]
        expected = sum(
            1 for i in range(64 - 4)
            if haystack[i:i + 4] == needle
        )
        assert interp.memory.get(2000) == expected
        assert expected > 0   # the pattern does occur

    def test_branchy_inner_loop(self):
        trace = kernel_trace("string_match")
        branches = sum(1 for op in trace.ops if op.is_branch)
        assert branches > 0.15 * len(trace)


class TestVectorSumResult:
    def test_sum_of_zero_memory_is_zero(self):
        interp = Interpreter(vector_sum(16))
        list(interp.run())
        assert interp.memory.get(16) == 0   # uninitialized words read 0
