"""End-to-end integration tests: kernels and workloads through the stack."""

import pytest

from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.workloads import generate_trace, get_profile, profile_names
from repro.workloads.kernels import KERNELS, kernel_trace


class TestKernelsThroughPipeline:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    @pytest.mark.parametrize("sched", [SchedulerKind.BASE,
                                       SchedulerKind.TWO_CYCLE,
                                       SchedulerKind.MACRO_OP,
                                       SchedulerKind.SELECT_FREE_SQUASH,
                                       SchedulerKind.SELECT_FREE_SCOREBOARD])
    def test_every_kernel_under_every_scheduler(self, kernel, sched):
        trace = kernel_trace(kernel)
        stats = simulate(trace, MachineConfig.paper_default(scheduler=sched))
        expected = sum(1 for op in trace.ops
                       if op.counts_as_inst and op.mnemonic != "nop")
        assert stats.committed_insts == expected
        assert stats.cycles > 0

    def test_vector_sum_scheduler_ordering(self):
        """The paper's headline ordering on the accumulate loop."""
        trace = kernel_trace("vector_sum")
        cfg = MachineConfig.unrestricted_queue
        base = simulate(trace, cfg(scheduler=SchedulerKind.BASE)).cycles
        mop = simulate(trace, cfg(scheduler=SchedulerKind.MACRO_OP)).cycles
        two = simulate(trace, cfg(scheduler=SchedulerKind.TWO_CYCLE)).cycles
        assert base <= mop <= two

    def test_pointer_chase_insensitive_to_discipline(self):
        """Load-latency-bound code never needed a 1-cycle scheduler."""
        trace = kernel_trace("pointer_chase")
        cfg = MachineConfig.unrestricted_queue
        base = simulate(trace, cfg(scheduler=SchedulerKind.BASE)).cycles
        two = simulate(trace, cfg(scheduler=SchedulerKind.TWO_CYCLE)).cycles
        assert two <= base * 1.10


@pytest.mark.slow
class TestWorkloadsThroughPipeline:
    @pytest.mark.parametrize("bench", list(profile_names()))
    def test_all_benchmarks_run_macro_op(self, bench):
        trace = generate_trace(get_profile(bench), 1500)
        stats = simulate(trace, MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.WIRED_OR))
        assert stats.committed_insts == 1500
        assert stats.mops_formed > 0

    def test_figure14_shape_on_gap(self):
        """gap: big 2-cycle loss, macro-op recovers a chunk of it."""
        trace = generate_trace(get_profile("gap"), 6000)
        cfg = MachineConfig.unrestricted_queue
        base = simulate(trace, cfg(scheduler=SchedulerKind.BASE)).ipc
        two = simulate(trace, cfg(scheduler=SchedulerKind.TWO_CYCLE)).ipc
        mop = simulate(trace, cfg(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.WIRED_OR)).ipc
        assert two < 0.95 * base          # visible 2-cycle loss
        assert mop > two                  # macro-op recovers
        assert mop <= base * 1.02

    def test_vortex_insensitive_to_two_cycle(self):
        trace = generate_trace(get_profile("vortex"), 6000)
        cfg = MachineConfig.unrestricted_queue
        base = simulate(trace, cfg(scheduler=SchedulerKind.BASE)).ipc
        two = simulate(trace, cfg(scheduler=SchedulerKind.TWO_CYCLE)).ipc
        assert two >= 0.93 * base

    def test_grouped_fraction_in_paper_band(self):
        """Paper: 28~46% of instructions grouped across benchmarks."""
        trace = generate_trace(get_profile("gzip"), 6000)
        stats = simulate(trace, MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP))
        assert 0.15 <= stats.grouped_fraction <= 0.60

    def test_mcf_memory_bound(self):
        trace = generate_trace(get_profile("mcf"), 4000)
        stats = simulate(trace, MachineConfig.paper_default())
        assert stats.ipc < 0.8
        assert stats.l2_load_misses > 0

    def test_queue_contention_direction(self):
        """Unrestricted queue never slower than the 32-entry one."""
        for bench in ("gap", "eon"):
            trace = generate_trace(get_profile(bench), 5000)
            small = simulate(trace, MachineConfig.paper_default()).ipc
            big = simulate(trace, MachineConfig.unrestricted_queue()).ipc
            assert big >= small * 0.995
