"""Tests for the resilient job service (repro.service).

Layer by layer: spec validation (protocol), the write-ahead journal
(including torn tails), the job manager (admission control, shedding,
in-flight dedup, cancel/timeout, crash recovery), the HTTP server, and
the retrying client.  Deterministic timing uses a stub executor whose
cells are plain ``asyncio.sleep``s; real-simulation coverage uses tiny
grids so a full job run costs well under a second.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.core.stats import SimStats
from repro.experiments.executor import (CellOutcome, Executor, ResultCache,
                                        cell_key)
from repro.experiments.faults import reset_service_probes
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (Job, JobManager, JobState, Overloaded,
                                ServiceDraining)
from repro.service.journal import JobJournal
from repro.service.protocol import JobSpec, SpecError
from repro.service.server import JobServer

SPEC = {
    "benchmarks": ["gap"],
    "configs": {
        "base": {"scheduler": "base"},
        "mop": {"scheduler": "macro-op"},
    },
    "num_insts": 240,
}


def run(coro):
    return asyncio.run(coro)


class StubExecutor:
    """run_async-compatible stand-in with controllable cell latency."""

    def __init__(self, delay=0.0, log=None, cache=None):
        self.delay = delay
        self.log = log if log is not None else []
        self.cache = cache
        self.last_summary = None

    async def run_async(self, cells, stop=None):
        for cell in cells:
            if stop is not None and stop():
                return
            if self.delay:
                await asyncio.sleep(self.delay)
            if stop is not None and stop():
                return
            self.log.append(cell.name)
            stats = SimStats(cycles=cell.num_insts)
            if self.cache is not None:
                self.cache.put(cell_key(cell), cell, stats)
            yield cell, CellOutcome(status="ok", stats=stats)


def make_manager(tmp_path, *, factory=None, queue_limit=4, sessions=1,
                 job_timeout=None, cache=None):
    cache = cache if cache is not None else ResultCache(tmp_path / "cache")
    journal = JobJournal(tmp_path / "journal.jsonl")
    return JobManager(
        cache=cache, journal=journal,
        executor_factory=factory or (lambda: Executor(jobs=1, cache=cache)),
        queue_limit=queue_limit, sessions=sessions,
        job_timeout=job_timeout)


async def finish(manager, job, timeout=30.0):
    await asyncio.wait_for(job.finished.wait(), timeout=timeout)
    await manager.stop()
    return job


class TestProtocol:
    def test_roundtrip(self):
        spec = JobSpec.from_payload(SPEC)
        assert JobSpec.from_payload(spec.to_payload()) == spec

    def test_cells_are_benchmark_major(self):
        spec = JobSpec.from_payload(
            {**SPEC, "benchmarks": ["gap", "vortex"]})
        assert [c.name for c in spec.cells()] == [
            "gap/base", "gap/mop", "vortex/base", "vortex/mop"]

    @pytest.mark.parametrize("mutation", [
        {"benchmarks": []},
        {"benchmarks": ["not-a-benchmark"]},
        {"configs": {}},
        {"configs": {"x": {"mop_sizee": 2}}},
        {"configs": {"x": {"scheduler": "quantum"}}},
        {"num_insts": 0},
        {"num_insts": 10**9},
        {"seed": "one"},
        {"max_cycles": -5},
        {"surprise": True},
    ])
    def test_bad_specs_rejected(self, mutation):
        with pytest.raises(SpecError):
            JobSpec.from_payload({**SPEC, **mutation})

    def test_cell_count_limit(self):
        configs = {f"c{i}": {"mop_size": 2 + i % 3} for i in range(40)}
        payload = {"benchmarks": ["gap"] * 1, "configs": configs}
        # 40 cells is fine; 40 benchmarks x 40 configs is not.
        JobSpec.from_payload({**SPEC, "configs": configs})
        with pytest.raises(SpecError, match="per-job limit"):
            JobSpec.from_payload({
                "benchmarks": ["gap", "vortex"] * 4,
                "configs": configs})
        del payload


class TestJournal:
    def test_fold_accept_cells_state(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.accept("job1", {"spec": 1})
        journal.cell("job1", 0, "k0", "ok", "sim")
        journal.cell("job1", 1, "k1", "ok", "cache")
        journal.state("job1", "done")
        journal.accept("job2", {"spec": 2})
        journal.close()
        replay = JobJournal(tmp_path / "j.jsonl").load()
        assert replay.torn_lines == 0
        assert replay.jobs["job1"].terminal
        assert replay.jobs["job1"].cells[1]["via"] == "cache"
        assert not replay.jobs["job2"].terminal

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        journal.accept("job1", {})
        journal.close()
        with path.open("a") as handle:
            handle.write('{"schema": 1, "event": "state", "id": "jo')
        replay = JobJournal(path).load()
        assert replay.torn_lines == 1
        assert "job1" in replay.jobs

    def test_alien_and_orphan_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"schema": 99, "event": "accept", "id": "a", "spec": {}}\n'
            '{"schema": 1, "event": "cell", "id": "ghost", "index": 0,'
            ' "key": "k", "status": "ok", "via": "sim"}\n')
        replay = JobJournal(path).load()
        assert replay.jobs == {}
        assert replay.torn_lines == 1  # alien schema; orphan cell is ok

    def test_missing_file_is_empty(self, tmp_path):
        replay = JobJournal(tmp_path / "absent.jsonl").load()
        assert replay.jobs == {} and replay.torn_lines == 0


class TestAdmission:
    def test_ack_implies_journal(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(SPEC)   # sessions never started
            replay = JobJournal(tmp_path / "journal.jsonl").load()
            assert job.id in replay.jobs
            assert not replay.jobs[job.id].terminal
        run(scenario())

    def test_queue_full_sheds_with_overloaded(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path, queue_limit=2)
            manager.submit(SPEC)
            manager.submit(SPEC)
            with pytest.raises(Overloaded) as err:
                manager.submit(SPEC)
            assert err.value.queue_limit == 2
            assert manager.metrics.shed == 1
            assert manager.metrics.accepted == 2
        run(scenario())

    def test_draining_rejects_submissions(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            manager.begin_drain()
            with pytest.raises(ServiceDraining):
                manager.submit(SPEC)
        run(scenario())

    def test_bad_spec_never_journaled(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            with pytest.raises(SpecError):
                manager.submit({**SPEC, "benchmarks": ["nope"]})
            replay = JobJournal(tmp_path / "journal.jsonl").load()
            assert replay.jobs == {}
        run(scenario())


class TestJobExecution:
    def test_job_runs_to_done_with_results(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(SPEC)
            await manager.start()
            await finish(manager, job)
            assert job.state == JobState.DONE
            payload = manager.result_payload(job)
            assert not payload["partial"]
            assert set(payload["results"]["gap"]) == {"base", "mop"}
            assert payload["results"]["gap"]["base"]["cycles"] > 0
            status = job.status_payload()
            assert status["cells"]["ok"] == 2
            return manager.metrics
        metrics = run(scenario())
        assert metrics.completed == 1

    def test_duplicate_job_resolves_from_cache(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            await manager.start()
            first = manager.submit(SPEC)
            await asyncio.wait_for(first.finished.wait(), 30)
            second = manager.submit(SPEC)
            await finish(manager, second)
            assert second.state == JobState.DONE
            vias = {rec["via"]
                    for rec in second.cell_records.values()}
            assert vias == {"cache"}
            assert manager.metrics.cache_hits == 2
        run(scenario())

    def test_failed_cell_fails_job_structurally(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "gap/base=raise")
        async def scenario():
            cache = ResultCache(tmp_path / "cache")
            manager = make_manager(
                tmp_path, cache=cache,
                factory=lambda: Executor(jobs=1, cache=cache,
                                         max_retries=0,
                                         serial_fallback=False))
            job = manager.submit(SPEC)
            await manager.start()
            await finish(manager, job)
            assert job.state == JobState.FAILED
            assert "1 cell(s) failed" in job.error
            payload = manager.result_payload(job)
            assert payload["results"]["gap"]["base"] is None
            assert payload["results"]["gap"]["mop"] is not None
            assert payload["failed_cells"] == ["gap/base"]
        run(scenario())


class TestDedup:
    def test_identical_cells_simulated_once(self, tmp_path):
        log = []

        async def scenario():
            manager = make_manager(
                tmp_path, sessions=2,
                factory=lambda: StubExecutor(delay=0.05, log=log))
            one = manager.submit(SPEC)
            two = manager.submit(SPEC)
            await manager.start()
            await asyncio.wait_for(one.finished.wait(), 10)
            await finish(manager, two, timeout=10)
            assert one.state == JobState.DONE
            assert two.state == JobState.DONE
            assert manager.metrics.dedup_hits >= 1
            return manager
        run(scenario())
        # Two jobs, two unique cells: each simulated exactly once.
        assert sorted(log) == ["gap/base", "gap/mop"]

    def test_waiter_retries_when_owner_aborts(self, tmp_path):
        async def scenario():
            calls = {"n": 0}

            class FlakyStub(StubExecutor):
                async def run_async(self, cells, stop=None):
                    calls["n"] += 1
                    if calls["n"] == 1:
                        # First owner dies before resolving anything.
                        raise RuntimeError("owner lost")
                    async for item in super().run_async(cells,
                                                        stop=stop):
                        yield item

            manager = make_manager(
                tmp_path, sessions=2,
                factory=lambda: FlakyStub(delay=0.05))
            one = manager.submit(SPEC)
            two = manager.submit(SPEC)
            await manager.start()
            await asyncio.wait_for(one.finished.wait(), 10)
            await finish(manager, two, timeout=10)
            # The first job failed, but the second self-served instead
            # of hanging on the dead owner's futures.
            assert one.state == JobState.FAILED
            assert two.state == JobState.DONE
        run(scenario())


class TestCancelAndTimeout:
    def test_cancel_running_job(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor(delay=0.2))
            job = manager.submit(SPEC)
            await manager.start()
            while job.state != JobState.RUNNING:
                await asyncio.sleep(0.01)
            manager.cancel(job.id)
            await finish(manager, job, timeout=10)
            assert job.state == JobState.CANCELLED
            assert manager.metrics.cancelled == 1
        run(scenario())

    def test_cancel_queued_job(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor(delay=0.2),
                sessions=1)
            first = manager.submit(SPEC)
            second = manager.submit(SPEC)
            manager.cancel(second.id)
            assert second.state == JobState.CANCELLED
            await manager.start()
            await finish(manager, first, timeout=10)
            assert first.state == JobState.DONE
        run(scenario())

    def test_cancel_terminal_job_conflicts(self, tmp_path):
        from repro.service.jobs import CancelConflict

        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor())
            job = manager.submit(SPEC)
            await manager.start()
            await finish(manager, job, timeout=10)
            with pytest.raises(CancelConflict):
                manager.cancel(job.id)
        run(scenario())

    def test_job_timeout(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor(delay=5.0),
                job_timeout=0.2)
            job = manager.submit(SPEC)
            await manager.start()
            await finish(manager, job, timeout=10)
            assert job.state == JobState.TIMEOUT
            assert manager.metrics.job_timeouts == 1
            assert "timeout" in job.error
        run(scenario())

    def test_drain_waits_for_running_jobs(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor(delay=0.05))
            job = manager.submit(SPEC)
            await manager.start()
            clean = await manager.drain(timeout=10)
            assert clean
            assert job.state == JobState.DONE
            with pytest.raises(ServiceDraining):
                manager.submit(SPEC)
        run(scenario())

    def test_drain_timeout_leaves_jobs_recoverable(self, tmp_path):
        """A drain that gives up must NOT mark the interrupted jobs
        terminal: a ``cancelled``/``failed`` journal record would stop
        the next start from requeueing acked work (silent job loss)."""
        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor(delay=0.5))
            job = manager.submit(SPEC)
            await manager.start()
            clean = await manager.drain(timeout=0.1)
            assert not clean
            # Interrupted, not cancelled: back to queued, non-terminal.
            assert job.state == JobState.QUEUED
            assert manager.metrics.cancelled == 0
            manager.journal.close()
        run(scenario())

        replay = JobJournal(tmp_path / "journal.jsonl").load()
        record = next(iter(replay.jobs.values()))
        assert not record.terminal

        # And a fresh manager on the same journal requeues it.
        fresh = make_manager(tmp_path,
                             factory=lambda: StubExecutor())

        async def recovered():
            assert fresh.recover() == 1
            await fresh.start()
            job = next(iter(fresh.jobs.values()))
            await finish(fresh, job, timeout=10)
            assert job.state == JobState.DONE
        run(recovered())


class TestRecovery:
    def test_non_terminal_job_requeued_and_completed(self, tmp_path):
        async def seed():
            manager = make_manager(tmp_path)
            job = manager.submit(SPEC)    # journaled, never run
            return job.id
        job_id = run(seed())

        async def recovered():
            manager = make_manager(tmp_path)
            assert manager.recover() == 1
            assert manager.metrics.recovered == 1
            job = manager.get(job_id)
            assert job.recovered
            await manager.start()
            await finish(manager, job)
            assert job.state == JobState.DONE
            payload = manager.result_payload(job)
            assert payload["results"]["gap"]["base"] is not None
        run(recovered())

    def test_recovery_resolves_cached_cells_without_resim(self, tmp_path):
        async def seed():
            manager = make_manager(tmp_path)
            job = manager.submit(SPEC)
            await manager.start()
            await finish(manager, job)
            # Forge a crash: strip the terminal state so the job looks
            # in-flight, exactly what a kill-mid-run journal holds.
            manager.journal.close()
            path = tmp_path / "journal.jsonl"
            lines = [line for line in path.read_text().splitlines()
                     if '"state": "done"' not in line]
            path.write_text("\n".join(lines) + "\n")
            return job.id
        job_id = run(seed())

        log = []

        async def recovered():
            cache = ResultCache(tmp_path / "cache")
            manager = make_manager(
                tmp_path, cache=cache,
                factory=lambda: StubExecutor(log=log, cache=cache))
            assert manager.recover() == 1
            job = manager.get(job_id)
            await manager.start()
            await finish(manager, job)
            assert job.state == JobState.DONE
            vias = {rec["via"] for rec in job.cell_records.values()}
            assert vias == {"cache"}
        run(recovered())
        assert log == []   # nothing was re-simulated

    def test_terminal_jobs_restored_not_requeued(self, tmp_path):
        async def seed():
            manager = make_manager(tmp_path)
            job = manager.submit(SPEC)
            await manager.start()
            await finish(manager, job)
            return job.id
        job_id = run(seed())

        async def recovered():
            manager = make_manager(tmp_path)
            assert manager.recover() == 0
            job = manager.get(job_id)
            assert job.state == JobState.DONE
            assert job.recovered
            # Results still served, straight from the shared cache.
            payload = manager.result_payload(job)
            assert payload["results"]["gap"]["mop"]["cycles"] > 0
        run(recovered())

    def test_torn_write_fails_job_but_journal_recovers(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "serve/journal/cell=torn-write:1")
        reset_service_probes()

        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor())
            job = manager.submit(SPEC)
            await manager.start()
            await finish(manager, job)
            assert job.state == JobState.FAILED
            assert "torn journal write" in job.error
            return job.id
        job_id = run(scenario())
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        replay = JobJournal(tmp_path / "journal.jsonl").load()
        assert replay.torn_lines == 1
        assert replay.jobs[job_id].terminal   # failed state survived


def _http(host, port, method, path, body=None):
    """One blocking HTTP request (for use via run_in_executor)."""
    import http.client
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


class TestHttpServer:
    def test_routes_and_errors(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor())
            server = JobServer(manager, port=0)
            host, port = await server.start()
            loop = asyncio.get_running_loop()

            async def req(method, path, body=None):
                return await loop.run_in_executor(
                    None, _http, host, port, method, path, body)

            status, health = await req("GET", "/healthz")
            assert (status, health["status"]) == (200, "ok")
            status, _ = await req("GET", "/metrics")
            assert status == 200
            status, error = await req("GET", "/nope")
            assert status == 404
            status, error = await req("PUT", "/jobs")
            assert status == 405
            status, error = await req("POST", "/jobs",
                                      {"benchmarks": ["zz"],
                                       "configs": {"a": {}}})
            assert status == 400 and not error["retryable"]
            status, accepted = await req("POST", "/jobs", SPEC)
            assert status == 202
            job_id = accepted["id"]
            status, _ = await req("GET", f"/jobs/{job_id}")
            assert status == 200
            status, _ = await req("GET", "/jobs/ghost")
            assert status == 404
            server.request_shutdown()
            assert await server.serve_forever(drain_timeout=10)
        run(scenario())

    def test_queue_full_returns_retryable_429(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path, queue_limit=1, sessions=1,
                factory=lambda: StubExecutor(delay=0.5))
            server = JobServer(manager, port=0)
            host, port = await server.start()
            loop = asyncio.get_running_loop()

            async def submit():
                return await loop.run_in_executor(
                    None, _http, host, port, "POST", "/jobs", SPEC)

            status, _ = await submit()
            assert status == 202          # picked up by the session
            while manager.queue_depth < 1:
                status, _ = await submit()
                assert status == 202
            status, shed = await submit()
            assert status == 429
            assert shed["retryable"] is True
            assert shed["retry_after"] >= 1
            server.request_shutdown()
            await server.serve_forever(drain_timeout=10)
        run(scenario())

    def test_draining_returns_503(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path, factory=lambda: StubExecutor())
            server = JobServer(manager, port=0)
            host, port = await server.start()
            manager.begin_drain()
            loop = asyncio.get_running_loop()
            status, error = await loop.run_in_executor(
                None, _http, host, port, "POST", "/jobs", SPEC)
            assert status == 503 and error["retryable"] is True
            status, health = await loop.run_in_executor(
                None, _http, host, port, "GET", "/healthz")
            assert health["status"] == "draining"
            server.request_shutdown()
            await server.serve_forever(drain_timeout=10)
        run(scenario())


class _ServerThread:
    """A live JobServer on a daemon thread, for sync-client tests."""

    def __init__(self, tmp_path, **manager_kw):
        self.tmp_path = tmp_path
        self.manager_kw = manager_kw
        self.address = None
        self._ready = threading.Event()
        self._loop = None
        self._server = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        manager = make_manager(self.tmp_path, **self.manager_kw)
        self._server = JobServer(manager, port=0)
        self._loop = asyncio.get_running_loop()
        self.address = await self._server.start()
        self._ready.set()
        await self._server.serve_forever(drain_timeout=10)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server thread never came up"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._thread.join(timeout=30)


class TestClient:
    def test_submit_wait_result_cancel(self, tmp_path):
        with _ServerThread(tmp_path,
                           factory=lambda: StubExecutor(delay=0.05)) \
                as served:
            host, port = served.address
            client = ServiceClient(host, port)
            accepted = client.submit(SPEC)
            status = client.wait(accepted["id"], timeout=30)
            assert status["state"] == "done"
            result = client.result(accepted["id"])
            assert result["results"]["gap"]["base"]["cycles"] == 240
            with pytest.raises(ServiceError) as err:
                client.cancel(accepted["id"])
            assert err.value.status == 409

    def test_submit_retries_through_shedding(self, tmp_path):
        with _ServerThread(tmp_path, queue_limit=1, sessions=1,
                           factory=lambda: StubExecutor(delay=0.3)) \
                as served:
            host, port = served.address
            client = ServiceClient(host, port)
            accepted = [client.submit(SPEC) for _ in range(4)]
            assert len({a["id"] for a in accepted}) == 4
            for item in accepted:
                assert client.wait(item["id"], timeout=60)[
                    "state"] == "done"
            shed = client.metrics()["shed"]
            assert shed >= 1   # at least one submission was shed+retried

    def test_unreachable_server_is_retryable_error(self):
        client = ServiceClient("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(ServiceError) as err:
            client.healthz()
        assert err.value.status == 0
        assert err.value.retryable

    def test_slow_client_fault_trips_server_deadline(self, tmp_path,
                                                     monkeypatch):
        import repro.service.server as server_mod
        monkeypatch.setattr(server_mod, "READ_TIMEOUT", 0.2)
        monkeypatch.setattr(
            "repro.experiments.faults.SLOW_CLIENT_SECONDS", 0.6)
        with _ServerThread(tmp_path,
                           factory=lambda: StubExecutor()) as served:
            host, port = served.address
            monkeypatch.setenv("REPRO_FAULT_INJECT",
                               "client/send=slow-client:1")
            reset_service_probes()
            client = ServiceClient(host, port)
            with pytest.raises(ServiceError) as err:
                client.submit(SPEC, retries=0)
            # The server enforces its read deadline: the stalled client
            # either reads the 408 or finds the connection torn down
            # under it (broken pipe) — both structured and retryable.
            assert err.value.status in (0, 408)
            assert err.value.retryable
            monkeypatch.delenv("REPRO_FAULT_INJECT")
            # The connection after the stalled one is served normally.
            assert client.healthz()["status"] == "ok"
