"""Unit tests for register conventions."""

import pytest

from repro.isa.registers import (
    FP_REG_BASE,
    FP_ZERO_REG,
    NUM_ARCH_REGS,
    ZERO_REG,
    is_fp_reg,
    is_zero_reg,
    parse_reg,
    reg_name,
)


class TestZeroRegister:
    def test_r31_is_zero(self):
        assert is_zero_reg(ZERO_REG)

    def test_f31_is_zero(self):
        assert is_zero_reg(FP_ZERO_REG)

    def test_ordinary_registers_are_not_zero(self):
        assert not is_zero_reg(0)
        assert not is_zero_reg(30)
        assert not is_zero_reg(FP_REG_BASE)


class TestNaming:
    def test_int_names(self):
        assert reg_name(0) == "r0"
        assert reg_name(31) == "r31"

    def test_fp_names(self):
        assert reg_name(FP_REG_BASE) == "f0"
        assert reg_name(FP_REG_BASE + 31) == "f31"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)
        with pytest.raises(ValueError):
            reg_name(-1)


class TestParsing:
    def test_round_trip_all_registers(self):
        for reg in range(NUM_ARCH_REGS):
            assert parse_reg(reg_name(reg)) == reg

    def test_case_insensitive(self):
        assert parse_reg("R5") == 5
        assert parse_reg("F3") == FP_REG_BASE + 3

    @pytest.mark.parametrize("bad", ["x5", "r", "r32", "f32", "", "5r"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)


class TestClassification:
    def test_fp_reg_split(self):
        assert not is_fp_reg(31)
        assert is_fp_reg(FP_REG_BASE)
