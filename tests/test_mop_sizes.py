"""Tests for the larger-MOP extension (Section 4.3 future work).

The paper evaluates 2-instruction MOPs and leaves larger sizes as future
work; this repository implements them by chaining per-instruction pointers
at formation time, optionally paired with a deeper pipelined scheduling
loop.
"""


from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.core.pipeline import Processor
from tests.conftest import TraceBuilder


def chain4_trace(iterations: int = 200) -> TraceBuilder:
    """A 4-op dependent chain per iteration at fixed PCs."""
    tb = TraceBuilder()
    for _ in range(iterations):
        tb.alu(dest=1, srcs=(4,), pc=0)
        tb.alu(dest=2, srcs=(1,), pc=1)
        tb.alu(dest=3, srcs=(2,), pc=2)
        tb.alu(dest=4, srcs=(3,), pc=3)
    return tb


def mop_cfg(**kw):
    kw.setdefault("iq_size", None)
    kw.setdefault("wakeup_style", WakeupStyle.WIRED_OR)
    return MachineConfig(scheduler=SchedulerKind.MACRO_OP, **kw)


class TestChainedFormation:
    def test_four_op_mops_form(self):
        trace = chain4_trace().build()
        stats = simulate(trace, mop_cfg(mop_size=4))
        assert stats.mops_formed > 0
        avg = stats.grouped_ops / stats.mops_formed
        assert avg > 3.5

    def test_size_limit_respected(self):
        trace = chain4_trace().build()
        processor = Processor(mop_cfg(mop_size=3), trace)
        sizes = []
        original = type(processor)._insert_mop

        def capture(self, head, tail, pointer, now, extras=()):
            sizes.append(2 + len(extras))
            return original(self, head, tail, pointer, now, extras=extras)

        type(processor)._insert_mop = capture
        try:
            processor.run()
        finally:
            type(processor)._insert_mop = original
        assert sizes and max(sizes) <= 3

    def test_bigger_mops_cut_queue_inserts(self):
        trace = chain4_trace().build()
        two = simulate(trace, mop_cfg(mop_size=2))
        four = simulate(trace, mop_cfg(mop_size=4))
        assert four.iq_inserts < two.iq_inserts
        assert four.insert_reduction > two.insert_reduction

    def test_commit_conservation(self):
        trace = chain4_trace().build()
        for size in (2, 3, 4, 8):
            stats = simulate(trace, mop_cfg(mop_size=size))
            assert stats.committed_insts == len(trace.ops)

    def test_timing_stays_near_base(self):
        """An n-op MOP is an n-cycle unit under a 2-cycle loop: chains
        fully covered by MOPs keep base-like throughput."""
        trace = chain4_trace().build()
        base = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.BASE, iq_size=None))
        four = simulate(trace, mop_cfg(mop_size=4))
        assert four.cycles <= base.cycles * 1.10 + 20


class TestDeeperSchedulingLoop:
    def test_depth_widens_bubble_for_singles(self):
        trace = chain4_trace().build()
        shallow = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.TWO_CYCLE, iq_size=None,
            sched_loop_depth=2))
        deep = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.TWO_CYCLE, iq_size=None,
            sched_loop_depth=4))
        assert deep.cycles > shallow.cycles

    def test_big_mops_tolerate_deep_loop(self):
        """The Section 4.3 thesis: an n-deep loop pairs with n-wide MOPs."""
        trace = chain4_trace().build()
        deep_two = simulate(trace, mop_cfg(mop_size=2, sched_loop_depth=4))
        deep_four = simulate(trace, mop_cfg(mop_size=4, sched_loop_depth=4))
        assert deep_four.cycles < deep_two.cycles

    def test_discipline_names(self):
        from repro.core.scheduler import make_discipline
        deep = make_discipline(MachineConfig(
            scheduler=SchedulerKind.MACRO_OP, sched_loop_depth=3))
        assert deep.name == "macro-op-3"
        plain = make_discipline(MachineConfig(
            scheduler=SchedulerKind.TWO_CYCLE, sched_loop_depth=3))
        assert plain.name == "3-cycle"


class TestCam2Chaining:
    def test_cam2_limits_chain_sources(self):
        """Chained members' merged external sources still fit 2 tags."""
        tb = TraceBuilder()
        for _ in range(150):
            tb.alu(dest=1, srcs=(5, 6), pc=0)
            tb.alu(dest=2, srcs=(1, 7), pc=1)   # adds a 3rd external src
            tb.alu(dest=5, srcs=(2,), pc=2)
            tb.alu(dest=6, srcs=(5,), pc=3)
            tb.alu(dest=7, srcs=(6,), pc=4)
        trace = tb.build()
        processor = Processor(mop_cfg(mop_size=4,
                                      wakeup_style=WakeupStyle.CAM_2SRC,
                                      last_arrival_filter=False), trace)
        merged_counts = []
        original = type(processor)._insert_mop

        def capture(self, head, tail, pointer, now, extras=()):
            members = [head, tail, *extras]
            dests = set()
            merged = set()
            for member in members:
                for src in member.inst.srcs:
                    if src not in dests:
                        merged.add(src)
                if member.inst.dest is not None:
                    dests.add(member.inst.dest)
            merged_counts.append(len(merged))
            return original(self, head, tail, pointer, now, extras=extras)

        type(processor)._insert_mop = capture
        try:
            processor.run()
        finally:
            type(processor)._insert_mop = original
        assert all(count <= 2 for count in merged_counts)
