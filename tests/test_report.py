"""Tests for the one-shot reproduction report."""

import pytest

from repro.cli import main
from repro.experiments.report import full_report


@pytest.mark.slow
class TestFullReport:
    def test_selected_sections_only(self):
        text = full_report(benchmarks=["gap"], num_insts=800,
                           sections=["table 2"])
        assert "Table 2" in text
        assert "Figure 14" not in text

    def test_all_sections_present(self):
        text = full_report(benchmarks=["gap"], num_insts=800)
        for title in ("Table 2", "Figure 6", "Figure 7", "Figure 13",
                      "Figure 14", "Figure 15", "Figure 16",
                      "Ablation: detection delay"):
            assert title in text, title

    def test_header_names_workloads(self):
        text = full_report(benchmarks=["mcf"], num_insts=800,
                           sections=["table 2"])
        assert "workloads: mcf" in text


class TestCliReport:
    def test_report_command(self, capsys):
        assert main(["report", "--insts", "800", "--benchmarks", "gap",
                     "--sections", "figure 14"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out and "gap" in out
