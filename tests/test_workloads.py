"""Unit tests for profiles, trace container, and kernels."""

import pytest

from repro.isa.opcodes import OpClass
from repro.workloads import (
    SPEC_CINT2000,
    Trace,
    get_profile,
    profile_names,
)
from repro.workloads.kernels import KERNELS, kernel_trace
from repro.workloads.profiles import WorkloadProfile


class TestProfiles:
    def test_twelve_benchmarks(self):
        assert len(profile_names()) == 12

    def test_paper_benchmark_names(self):
        expected = {"bzip", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
                    "parser", "perl", "twolf", "vortex", "vpr"}
        assert set(profile_names()) == expected

    def test_mix_sums_to_one(self):
        for profile in SPEC_CINT2000.values():
            total = (profile.frac_alu + profile.frac_load
                     + profile.frac_store + profile.frac_branch
                     + profile.frac_mult + profile.frac_fp)
            assert total == pytest.approx(1.0)

    def test_distance_distribution_sums_to_one(self):
        for profile in SPEC_CINT2000.values():
            total = (profile.dist_1_3 + profile.dist_4_7 + profile.dist_8p
                     + profile.dist_noncand + profile.dist_dead)
            assert total == pytest.approx(1.0)

    def test_valuegen_fractions_match_figure6_row(self):
        # The "% total insts" row of Figure 6.
        figure6_row = {
            "bzip": 49.2, "crafty": 50.9, "eon": 27.8, "gap": 48.7,
            "gcc": 37.4, "gzip": 56.3, "mcf": 40.2, "parser": 47.5,
            "perl": 42.7, "twolf": 47.7, "vortex": 37.6, "vpr": 44.7,
        }
        for name, percent in figure6_row.items():
            profile = get_profile(name)
            assert 100.0 * profile.valuegen_frac == pytest.approx(
                percent, abs=0.05)

    def test_candidate_fraction_in_paper_range(self):
        # Section 4.3: 53~73% of instructions are MOP candidates.
        for profile in SPEC_CINT2000.values():
            assert 0.50 <= profile.candidate_frac <= 0.78

    def test_gap_has_short_edges_vortex_long(self):
        assert (get_profile("gap").within_scope_frac
                > get_profile("vortex").within_scope_frac)

    def test_mcf_is_the_cache_miss_benchmark(self):
        rates = {name: p.dl1_miss_rate for name, p in SPEC_CINT2000.items()}
        assert max(rates, key=rates.get) == "mcf"

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            WorkloadProfile(name="bad", frac_alu=0.9, frac_load=0.9,
                            frac_store=0.0, frac_branch=0.0,
                            frac_mult=0.0, frac_fp=0.0)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("specjbb")

    def test_table2_reference_ipcs_recorded(self):
        assert get_profile("mcf").paper_ipc_32 == pytest.approx(0.34)
        assert get_profile("eon").paper_ipc_unrestricted == pytest.approx(2.13)


class TestTrace:
    def test_committed_insts_excludes_store_data(self):
        trace = kernel_trace("vector_sum")
        data_halves = sum(1 for op in trace.ops if op.is_store_data)
        assert trace.committed_insts == len(trace) - data_halves

    def test_histogram_covers_all_ops(self):
        trace = kernel_trace("dot_product")
        assert sum(trace.class_histogram().values()) == len(trace)

    def test_summary_mentions_name(self):
        trace = Trace("demo", [])
        assert "demo" in trace.summary()


class TestKernels:
    def test_all_kernels_run(self):
        for name in KERNELS:
            trace = kernel_trace(name)
            assert len(trace) > 10

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            kernel_trace("quicksort")

    def test_pointer_chase_is_load_heavy(self):
        trace = kernel_trace("pointer_chase")
        hist = trace.class_histogram()
        assert hist.get(OpClass.LOAD, 0) > 0.15 * len(trace)

    def test_fibonacci_has_serial_adds(self):
        trace = kernel_trace("fibonacci")
        hist = trace.class_histogram()
        assert hist[OpClass.INT_ALU] > len(trace) // 2
