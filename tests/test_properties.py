"""Property-based tests (hypothesis) on core invariants."""

import random

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.core.pipeline import Processor
from repro.isa.instruction import DynInst, crack_store
from repro.isa.opcodes import OpClass
from repro.memory import Cache
from repro.mop.detection import MopDetector
from repro.mop.pointers import PointerCache
from repro.core.uop import Uop

pytestmark = pytest.mark.slow
from repro.workloads.trace import Trace

# ---------------------------------------------------------------------------
# Random-trace strategy
# ---------------------------------------------------------------------------


@st.composite
def random_traces(draw, max_len: int = 60):
    """Random small traces over a handful of registers, with loops."""
    length = draw(st.integers(min_value=1, max_value=max_len))
    loop_pcs = draw(st.integers(min_value=2, max_value=12))
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    ops = []
    seq = 0
    for i in range(length):
        pc = i % loop_pcs
        kind = rng.random()
        if kind < 0.5:
            ops.append(DynInst(
                seq=seq, pc=pc, op_class=OpClass.INT_ALU,
                dest=rng.randrange(1, 8),
                srcs=tuple(rng.sample(range(1, 8), rng.randint(0, 2)))))
            seq += 1
        elif kind < 0.65:
            ops.append(DynInst(
                seq=seq, pc=pc, op_class=OpClass.LOAD,
                dest=rng.randrange(1, 8), srcs=(rng.randrange(1, 8),),
                mem_hint=rng.choice([0, 0, 0, 1, 2])))
            seq += 1
        elif kind < 0.75:
            addr_op, data_op = crack_store(
                seq=seq, pc=pc, addr_srcs=(rng.randrange(1, 8),),
                data_src=rng.randrange(1, 8))
            ops.extend([addr_op, data_op])
            seq += 2
        elif kind < 0.9:
            ops.append(DynInst(
                seq=seq, pc=pc, op_class=OpClass.BRANCH,
                srcs=(rng.randrange(1, 8),),
                taken=rng.random() < 0.4,
                target_pc=rng.randrange(0, loop_pcs),
                mispred_hint=rng.random() < 0.1))
            seq += 1
        else:
            ops.append(DynInst(
                seq=seq, pc=pc, op_class=OpClass.INT_MULT,
                dest=rng.randrange(1, 8),
                srcs=(rng.randrange(1, 8), rng.randrange(1, 8))))
            seq += 1
    return Trace("random", ops)


_SCHEDULERS = list(SchedulerKind)

_settings = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestPipelineProperties:
    @given(trace=random_traces(), sched=st.sampled_from(_SCHEDULERS))
    @_settings
    def test_everything_commits_exactly_once(self, trace, sched):
        """Total commit conservation under every scheduler."""
        stats = simulate(trace, MachineConfig(scheduler=sched, iq_size=16))
        assert stats.committed_ops == len(trace.ops)
        assert stats.committed_insts == trace.committed_insts

    @given(trace=random_traces())
    @_settings
    def test_base_roughly_dominates_two_cycle(self, trace):
        """Atomic scheduling dominates pipelined 2-cycle scheduling, up to
        small scheduling anomalies: issuing a load consumer *earlier* can
        pull it into the load shadow and cost a replay that the delayed
        2-cycle issue happens to dodge (speculative scheduling is not
        monotone)."""
        base = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.BASE, iq_size=None))
        two = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.TWO_CYCLE, iq_size=None))
        assert base.cycles <= two.cycles + max(8, 0.1 * two.cycles)

    @given(trace=random_traces(), sched=st.sampled_from(_SCHEDULERS))
    @_settings
    def test_deterministic(self, trace, sched):
        cfg = MachineConfig(scheduler=sched, iq_size=32)
        assert simulate(trace, cfg).cycles == simulate(trace, cfg).cycles

    @given(trace=random_traces())
    @_settings
    def test_macro_op_grouping_conserves_commits(self, trace):
        stats = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.MACRO_OP, iq_size=16,
            mop_detection_delay=0))
        breakdown_total = (stats.mop_valuegen + stats.mop_nonvaluegen
                           + stats.independent_mop
                           + stats.candidate_ungrouped
                           + stats.not_candidate)
        assert breakdown_total == stats.committed_insts

    @given(trace=random_traces(),
           iq_small=st.integers(min_value=4, max_value=16))
    @_settings
    def test_tiny_queue_never_deadlocks(self, trace, iq_small):
        stats = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.MACRO_OP, iq_size=iq_small,
            mop_detection_delay=0))
        assert stats.committed_ops == len(trace.ops)


class TestDetectorProperties:
    @given(trace=random_traces(max_len=40))
    @_settings
    def test_pointers_never_self_referential_or_backward(self, trace):
        """Every created pointer points strictly forward within 3 bits."""
        config = MachineConfig(scheduler=SchedulerKind.MACRO_OP)
        cache = PointerCache(0)
        detector = MopDetector(config, cache)
        group = []
        for op in trace.ops:
            group.append(Uop(op, 0))
            if len(group) == 4:
                detector.observe_group(group, now=0)
                group = []
        for head_pc, (pointer, _at) in cache._pointers.items():
            assert 1 <= pointer.offset <= 7
            assert pointer.head_pc == head_pc

    @given(trace=random_traces(max_len=40))
    @_settings
    def test_cam2_mop_entries_respect_source_limit(self, trace):
        """With 2-source wakeup, no formed MOP may merge three distinct
        register sources (intra-MOP edges excluded)."""
        processor = Processor(MachineConfig(
            scheduler=SchedulerKind.MACRO_OP, iq_size=None,
            wakeup_style=WakeupStyle.CAM_2SRC, mop_detection_delay=0),
            trace)
        captured = []
        original = type(processor)._insert_mop

        def capture(self, head, tail, pointer, now, extras=()):
            members = [head, tail, *extras]
            dests = set()
            merged = set()
            for member in members:
                for src in member.inst.srcs:
                    if src not in dests:
                        merged.add(src)
                if member.inst.dest is not None:
                    dests.add(member.inst.dest)
            captured.append(len(merged))
            return original(self, head, tail, pointer, now, extras=extras)

        type(processor)._insert_mop = capture
        try:
            processor.run()
        finally:
            type(processor)._insert_mop = original
        assert all(count <= 2 for count in captured)
        assert processor.stats.committed_ops == len(trace.ops)


class TestCacheProperties:
    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                              min_size=1, max_size=200))
    @_settings
    def test_occupancy_bounded_by_capacity(self, addresses):
        cache = Cache("t", 1024, 2, 64, latency=1)
        for addr in addresses:
            cache.access(addr)
        for entry_set in cache._sets:
            assert len(entry_set) <= cache.assoc

    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16),
                              min_size=1, max_size=100))
    @_settings
    def test_immediate_rereference_always_hits(self, addresses):
        cache = Cache("t", 1024, 2, 64, latency=1)
        for addr in addresses:
            cache.access(addr)
            assert cache.access(addr)

    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16),
                              min_size=1, max_size=100))
    @_settings
    def test_stats_consistent(self, addresses):
        cache = Cache("t", 512, 2, 64, latency=1)
        for addr in addresses:
            cache.access(addr)
        assert cache.stats.accesses == len(addresses)
        assert 0 <= cache.stats.hits <= cache.stats.accesses
