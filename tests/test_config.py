"""Tests that MachineConfig reproduces Table 1 and derives correctly."""

import pytest

from repro.core import MachineConfig, SchedulerKind, WakeupStyle


class TestTable1:
    """Each row of Table 1 as an assertion."""

    def test_out_of_order_execution_row(self):
        cfg = MachineConfig.paper_default()
        assert cfg.width == 4                 # 4-wide fetch/issue/commit
        assert cfg.rob_size == 128
        assert cfg.iq_size == 32
        assert cfg.replay_penalty == 2        # selective replay penalty

    def test_functional_units_row(self):
        cfg = MachineConfig.paper_default()
        assert cfg.int_alu_count == 4
        assert cfg.fp_alu_count == 2
        assert cfg.int_mult_count == 2
        assert cfg.fp_mult_count == 2
        assert cfg.mem_port_count == 2

    def test_branch_prediction_row(self):
        cfg = MachineConfig.paper_default()
        assert cfg.bimodal_entries == 4096
        assert cfg.gshare_entries == 4096
        assert cfg.selector_entries == 4096
        assert cfg.ras_depth == 16
        assert cfg.btb_entries == 1024 and cfg.btb_assoc == 4
        assert cfg.min_mispredict_penalty == 14

    def test_memory_system_row(self):
        cfg = MachineConfig.paper_default()
        assert (cfg.il1_size, cfg.il1_assoc, cfg.il1_line,
                cfg.il1_latency) == (16 * 1024, 2, 64, 2)
        assert (cfg.dl1_size, cfg.dl1_assoc, cfg.dl1_line,
                cfg.dl1_latency) == (16 * 1024, 4, 64, 2)
        assert (cfg.l2_size, cfg.l2_assoc, cfg.l2_line,
                cfg.l2_latency) == (256 * 1024, 4, 128, 8)
        assert cfg.memory_latency == 100

    def test_thirteen_stage_pipeline(self):
        # Fetch + (Decode Rename Rename Queue) + Sched + (Disp Disp RF RF
        # Exe) + WB + Commit = 13 stages.
        cfg = MachineConfig.paper_default()
        assert 1 + cfg.frontend_depth + 1 + cfg.dispatch_depth + 2 == 13


class TestDerived:
    def test_unrestricted_queue(self):
        cfg = MachineConfig.unrestricted_queue()
        assert cfg.iq_size is None

    def test_assumed_load_latency_is_agen_plus_dl1(self):
        cfg = MachineConfig.paper_default()
        assert cfg.assumed_load_latency == 1 + cfg.dl1_latency == 3

    def test_mop_scope_is_8_on_4wide(self):
        cfg = MachineConfig.paper_default()
        assert cfg.mop_scope_ops == 8

    def test_extra_stages_extend_frontend_only_for_mop(self):
        mop = MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP, extra_mop_stages=2)
        base = MachineConfig.paper_default(
            scheduler=SchedulerKind.BASE, extra_mop_stages=2)
        assert mop.effective_frontend_depth == mop.frontend_depth + 2
        assert base.effective_frontend_depth == base.frontend_depth

    def test_max_mop_sources_per_wakeup_style(self):
        cam = MachineConfig.paper_default(wakeup_style=WakeupStyle.CAM_2SRC)
        wor = MachineConfig.paper_default(wakeup_style=WakeupStyle.WIRED_OR)
        assert cam.max_mop_sources == 2
        assert wor.max_mop_sources is None

    def test_with_scheduler_copies(self):
        cfg = MachineConfig.paper_default()
        mop = cfg.with_scheduler(SchedulerKind.MACRO_OP,
                                 WakeupStyle.CAM_2SRC)
        assert mop.scheduler is SchedulerKind.MACRO_OP
        assert mop.wakeup_style is WakeupStyle.CAM_2SRC
        assert cfg.scheduler is SchedulerKind.BASE  # original untouched


class TestValidation:
    def test_bad_width(self):
        with pytest.raises(ValueError):
            MachineConfig(width=0)

    def test_bad_extra_stages(self):
        with pytest.raises(ValueError):
            MachineConfig(extra_mop_stages=3)

    def test_mop_size_bounds(self):
        MachineConfig(mop_size=2)      # the paper's configuration
        MachineConfig(mop_size=8)      # the Section 4.3 extension's max
        with pytest.raises(ValueError):
            MachineConfig(mop_size=1)
        with pytest.raises(ValueError):
            MachineConfig(mop_size=9)

    def test_sched_loop_depth_bounds(self):
        MachineConfig(sched_loop_depth=3)
        with pytest.raises(ValueError):
            MachineConfig(sched_loop_depth=0)

    def test_bad_iq_size(self):
        with pytest.raises(ValueError):
            MachineConfig(iq_size=0)
