"""Unit tests for op classes, latencies, and candidate classification."""

import pytest

from repro.isa.opcodes import (
    OpClass,
    execution_latency,
    is_control,
    is_mop_candidate,
    is_single_cycle,
    is_value_generating_candidate,
)


class TestLatencies:
    """Latencies must match Table 1 exactly."""

    @pytest.mark.parametrize("op_class,latency", [
        (OpClass.INT_ALU, 1),
        (OpClass.INT_MULT, 3),
        (OpClass.INT_DIV, 20),
        (OpClass.FP_ALU, 2),
        (OpClass.FP_MULT, 4),
        (OpClass.FP_DIV, 24),
        (OpClass.STORE_ADDR, 1),
        (OpClass.BRANCH, 1),
    ])
    def test_table1_latency(self, op_class, latency):
        assert execution_latency(op_class) == latency

    def test_load_agen_is_one_cycle(self):
        # Loads show their address-generation cycle; memory adds the rest.
        assert execution_latency(OpClass.LOAD) == 1

    def test_every_op_class_has_a_latency(self):
        for op_class in OpClass:
            assert execution_latency(op_class) >= 1


class TestSingleCycle:
    def test_int_alu_is_single_cycle(self):
        assert is_single_cycle(OpClass.INT_ALU)

    def test_load_is_not_single_cycle(self):
        # A load's memory access makes it multi-cycle for the scheduler.
        assert not is_single_cycle(OpClass.LOAD)

    def test_multiplies_are_not_single_cycle(self):
        assert not is_single_cycle(OpClass.INT_MULT)
        assert not is_single_cycle(OpClass.FP_MULT)

    def test_branch_is_single_cycle(self):
        assert is_single_cycle(OpClass.BRANCH)


class TestCandidates:
    """Section 4.1's candidate classification."""

    def test_candidates_are_the_single_cycle_classes(self):
        expected = {OpClass.INT_ALU, OpClass.STORE_ADDR, OpClass.BRANCH,
                    OpClass.JUMP, OpClass.JUMP_INDIRECT}
        actual = {c for c in OpClass if is_mop_candidate(c)}
        assert actual == expected

    def test_loads_and_fp_are_not_candidates(self):
        for op_class in (OpClass.LOAD, OpClass.FP_ALU, OpClass.INT_MULT,
                         OpClass.FP_DIV, OpClass.STORE_DATA):
            assert not is_mop_candidate(op_class)

    def test_valuegen_requires_destination(self):
        assert is_value_generating_candidate(OpClass.INT_ALU, True)
        assert not is_value_generating_candidate(OpClass.INT_ALU, False)

    def test_branches_are_never_valuegen(self):
        # Branches produce no register value: tails only.
        assert not is_value_generating_candidate(OpClass.BRANCH, False)

    def test_store_addr_is_candidate_but_not_valuegen(self):
        assert is_mop_candidate(OpClass.STORE_ADDR)
        assert not is_value_generating_candidate(OpClass.STORE_ADDR, False)

    def test_loads_are_never_valuegen_candidates(self):
        # Even though loads write registers, they are multi-cycle.
        assert not is_value_generating_candidate(OpClass.LOAD, True)


class TestControl:
    def test_control_classes(self):
        assert is_control(OpClass.BRANCH)
        assert is_control(OpClass.JUMP)
        assert is_control(OpClass.JUMP_INDIRECT)
        assert not is_control(OpClass.INT_ALU)
        assert not is_control(OpClass.STORE_ADDR)
