"""Tests for the critical-path analysis."""

import pytest

from repro.analysis.critpath import (
    critical_path,
    two_cycle_exposure,
)
from repro.workloads import generate_trace, get_profile
from tests.conftest import chain_trace, independent_trace


class TestCriticalPath:
    def test_serial_chain_depth(self):
        trace = chain_trace(50)
        result = critical_path(trace, single_cycle_edge=1)
        assert result.critical_path == 50
        assert result.dataflow_ilp == pytest.approx(1.0)

    def test_two_cycle_edges_double_chain_depth(self):
        trace = chain_trace(50)
        result = critical_path(trace, single_cycle_edge=2)
        assert result.critical_path == pytest.approx(2 * 50, abs=2)

    def test_independent_ops_have_unit_depth(self):
        trace = independent_trace(50)
        result = critical_path(trace)
        assert result.critical_path == 1
        assert result.dataflow_ilp == 50

    def test_load_edges_cost_three(self, tb):
        tb.load(dest=1, base=9)
        tb.alu(dest=2, srcs=(1,))
        result = critical_path(tb.build())
        assert result.critical_path == 3 + 1

    def test_mult_edges_cost_latency(self, tb):
        tb.mult(dest=1, srcs=(9, 9))
        tb.alu(dest=2, srcs=(1,))
        result = critical_path(tb.build())
        assert result.critical_path == 3 + 1


class TestTwoCycleExposure:
    def test_serial_chain_exposure_near_half(self):
        assert two_cycle_exposure(chain_trace(100)) == pytest.approx(
            0.5, abs=0.02)

    def test_independent_work_exposure_zero(self):
        assert two_cycle_exposure(independent_trace(100)) == 0.0

    def test_load_chain_exposure_zero(self, tb):
        for _ in range(20):
            tb.load(dest=1, base=1)
        assert two_cycle_exposure(tb.build()) == 0.0

    def test_gap_more_exposed_than_vortex(self):
        gap = two_cycle_exposure(generate_trace(get_profile("gap"), 4000))
        vortex = two_cycle_exposure(
            generate_trace(get_profile("vortex"), 4000))
        assert gap > vortex
