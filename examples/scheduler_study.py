"""Scheduler design-space study on a SPEC-like workload.

Reproduces the paper's core comparison on one benchmark profile: every
scheduling discipline (base, 2-cycle, macro-op with both wakeup styles,
select-free squash-dep and scoreboard) under both issue-queue regimes
(32-entry and unrestricted), normalized to base scheduling — i.e., one
benchmark's slice of Figures 14, 15, and 16.

Run:  python examples/scheduler_study.py [benchmark] [num_insts]
      (defaults: gap 8000 — the paper's most scheduling-sensitive program)
"""

import sys

from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.workloads import generate_trace, get_profile


def study(benchmark: str, num_insts: int) -> None:
    profile = get_profile(benchmark)
    trace = generate_trace(profile, num_insts)
    print(f"benchmark {benchmark}: {num_insts} instructions "
          f"(paper base IPC {profile.paper_ipc_32:.2f} / "
          f"{profile.paper_ipc_unrestricted:.2f})")
    print()

    schedulers = [
        ("base", SchedulerKind.BASE, None),
        ("2-cycle", SchedulerKind.TWO_CYCLE, None),
        ("MOP 2-src", SchedulerKind.MACRO_OP, WakeupStyle.CAM_2SRC),
        ("MOP wired-OR", SchedulerKind.MACRO_OP, WakeupStyle.WIRED_OR),
        ("sel-free squash", SchedulerKind.SELECT_FREE_SQUASH, None),
        ("sel-free scoreboard", SchedulerKind.SELECT_FREE_SCOREBOARD, None),
    ]

    for queue_label, factory in (("32-entry issue queue",
                                  MachineConfig.paper_default),
                                 ("unrestricted issue queue",
                                  MachineConfig.unrestricted_queue)):
        print(queue_label)
        base_ipc = None
        for name, kind, style in schedulers:
            kwargs = {"scheduler": kind}
            if style is not None:
                kwargs["wakeup_style"] = style
            stats = simulate(trace, factory(**kwargs))
            if base_ipc is None:
                base_ipc = stats.ipc
            extra = ""
            if stats.mops_formed:
                extra = (f"  grouped={100 * stats.grouped_fraction:4.1f}%"
                         f" insert_red={100 * stats.insert_reduction:4.1f}%")
            print(f"  {name:20s} IPC={stats.ipc:6.3f}"
                  f"  rel={stats.ipc / base_ipc:6.3f}{extra}")
        print()


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gap"
    num_insts = int(sys.argv[2]) if len(sys.argv) > 2 else 8000
    study(benchmark, num_insts)


if __name__ == "__main__":
    main()
