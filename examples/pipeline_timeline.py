"""Watch macro-ops move through the pipeline, cycle by cycle.

Attaches the :class:`~repro.core.pipeview.PipeViewer` to a processor
running a dependent-chain loop and prints gem5-style per-op timelines under
2-cycle and macro-op scheduling.  Look for:

* under 2-cycle scheduling, consecutive chain ops issue 2 cycles apart;
* under macro-op scheduling, H/T pairs issue on the *same* cycle and the
  next pair follows 2 cycles later — 1 op/cycle, like atomic scheduling.

Run:  python examples/pipeline_timeline.py
"""

from repro.core import MachineConfig, SchedulerKind
from repro.core.pipeline import Processor
from repro.core.pipeview import PipeViewer
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.workloads.trace import Trace


def chain_trace(length: int) -> Trace:
    """A serial chain of dependent 1-cycle adds over four looping PCs."""
    ops = []
    for i in range(length):
        ops.append(DynInst(
            seq=i, pc=i % 4, op_class=OpClass.INT_ALU,
            dest=1 + (i % 2), srcs=(1 + ((i + 1) % 2),), mnemonic="add"))
    return Trace("chain", ops)


def show(scheduler: SchedulerKind) -> None:
    trace = chain_trace(400)
    config = MachineConfig.unrestricted_queue(scheduler=scheduler)
    processor = Processor(config, trace)
    viewer = PipeViewer.attach(processor)
    stats = processor.run()
    print(f"--- {scheduler.value}: {stats.cycles} cycles,"
          f" IPC {stats.ipc:.3f} ---")
    # Show a steady-state window (past pointer detection and warm-up).
    print(viewer.render(start=200, count=8, width=70))
    print(viewer.summary())
    print()


def main() -> None:
    print(__doc__)
    for scheduler in (SchedulerKind.TWO_CYCLE, SchedulerKind.MACRO_OP):
        show(scheduler)


if __name__ == "__main__":
    main()
