"""Quickstart: macro-op scheduling in five minutes.

Runs one small program (a dependent accumulate loop — the paper's Figure 4
scenario) through three scheduler models and shows the headline effect:

* *base*: ideally pipelined atomic scheduling — dependent single-cycle ops
  execute back to back;
* *2-cycle*: pipelined wakeup/select — one bubble per dependent pair;
* *macro-op*: pipelined 2-cycle scheduling that fuses dependent pairs into
  2-cycle macro-ops, winning the bubble back.

Run:  python examples/quickstart.py
"""

from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.workloads.kernels import kernel_trace


def main() -> None:
    trace = kernel_trace("vector_sum")
    print(trace.summary())
    print()

    configs = {
        "base (atomic)": MachineConfig.unrestricted_queue(
            scheduler=SchedulerKind.BASE),
        "2-cycle pipelined": MachineConfig.unrestricted_queue(
            scheduler=SchedulerKind.TWO_CYCLE),
        "macro-op (wired-OR)": MachineConfig.unrestricted_queue(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.WIRED_OR),
    }

    base_cycles = None
    print(f"{'scheduler':22s} {'cycles':>7s} {'IPC':>6s} {'rel':>6s}"
          f" {'MOPs':>5s}")
    for name, config in configs.items():
        stats = simulate(trace, config)
        if base_cycles is None:
            base_cycles = stats.cycles
        rel = base_cycles / stats.cycles
        print(f"{name:22s} {stats.cycles:7d} {stats.ipc:6.3f} {rel:6.3f}"
              f" {stats.mops_formed:5d}")

    print()
    print("2-cycle scheduling pays one bubble per dependent single-cycle")
    print("pair; macro-op scheduling fuses those pairs and recovers most")
    print("of the loss while the scheduling loop stays pipelined.")


if __name__ == "__main__":
    main()
