"""Build a custom workload profile and characterize it, paper-style.

Defines a new synthetic benchmark profile (an imaginary pointer-light,
chain-heavy integer code), then reproduces the paper's Section 4 analysis
for it: the Figure 6 dependence-distance characterization and the Figure 7
2x/8x groupability numbers — plus a quick scheduler comparison to see where
it would land in Figure 14.

Run:  python examples/characterize_workload.py
"""

from repro.analysis import characterize_distances, characterize_groupability
from repro.core import MachineConfig, SchedulerKind, simulate
from repro.workloads import generate_trace
from repro.workloads.profiles import WorkloadProfile

#: A hypothetical benchmark: dense dependent integer chains (gap-like), low
#: branch and miss rates — the profile macro-op scheduling loves most.
CRUNCH = WorkloadProfile(
    name="crunch",
    frac_alu=0.55, frac_load=0.20, frac_store=0.08, frac_branch=0.12,
    frac_mult=0.02, frac_fp=0.03,
    dist_1_3=0.68, dist_4_7=0.17, dist_8p=0.03,
    dist_noncand=0.07, dist_dead=0.05,
    chain_bias=0.9, loop_carriers=1.2, parallel_body_frac=0.08,
    leaf_frac=0.15,
    mispredict_rate=0.02, dl1_miss_rate=0.015, l2_miss_rate=0.1,
    mean_trip_count=24.0,
)


def main() -> None:
    trace = generate_trace(CRUNCH, 8000)
    print(trace.summary())
    print()

    buckets = characterize_distances(trace)
    print("Figure 6-style characterization:")
    print(f"  value-generating candidates: "
          f"{100 * buckets.valuegen_fraction:.1f}% of instructions")
    for bucket, label in (("d1_3", "distance 1~3"),
                          ("d4_7", "distance 4~7"),
                          ("d8p", "distance 8+"),
                          ("noncand", "dependent not candidate"),
                          ("dead", "dynamically dead")):
        print(f"  {label:24s} {100 * buckets.fraction(bucket):5.1f}%")
    print(f"  within 8-instruction scope: "
          f"{100 * buckets.within_scope:.1f}%")
    print()

    print("Figure 7-style groupability:")
    for limit in (2, 8):
        result = characterize_groupability(trace, mop_limit=limit)
        print(f"  {limit}x MOPs: {100 * result.grouped_fraction:.1f}% of"
              f" instructions grouped"
              f" (avg size {result.avg_mop_size:.2f})")
    print()

    print("Where would it land in Figure 14?")
    base = simulate(trace, MachineConfig.unrestricted_queue(
        scheduler=SchedulerKind.BASE))
    two = simulate(trace, MachineConfig.unrestricted_queue(
        scheduler=SchedulerKind.TWO_CYCLE))
    mop = simulate(trace, MachineConfig.unrestricted_queue(
        scheduler=SchedulerKind.MACRO_OP))
    print(f"  base IPC {base.ipc:.3f}")
    print(f"  2-cycle  {two.ipc / base.ipc:.3f} of base")
    print(f"  macro-op {mop.ipc / base.ipc:.3f} of base"
          f"  ({100 * mop.grouped_fraction:.1f}% grouped)")


if __name__ == "__main__":
    main()
