"""Write your own assembly kernel and watch macro-ops form.

Assembles a small program, executes it functionally (real control flow and
memory), then runs the trace through the macro-op pipeline — printing the
MOP pointers detected in the loop and the timing under each scheduler.

Run:  python examples/custom_assembly.py
"""

from repro.core import MachineConfig, SchedulerKind, WakeupStyle
from repro.core.pipeline import Processor
from repro.isa.assembler import assemble
from repro.isa.interpreter import run_program
from repro.workloads.trace import Trace

#: A polynomial-evaluation loop: dependent multiply-add chains with a
#: per-iteration pointer increment — plenty of single-cycle pairs to fuse.
PROGRAM = """
    li   r1, 0          # i
    li   r2, 120        # iterations
    li   r3, 0          # acc
    li   r4, 3          # coefficient
loop:
    add  r5, r1, r4     # x + c            (pairable head)
    add  r6, r5, r5     # 2(x + c)         (dependent tail)
    add  r3, r3, r6     # acc +=           (chains into next iteration)
    addi r1, r1, 1
    blt  r1, r2, loop
    sw   r3, 0(r2)
    halt
"""


def main() -> None:
    program = assemble(PROGRAM)
    print("program:")
    print(program.disassemble())
    print()

    trace = Trace("poly", run_program(program))
    print(trace.summary())
    print()

    results = {}
    for label, kind in (("base", SchedulerKind.BASE),
                        ("2-cycle", SchedulerKind.TWO_CYCLE),
                        ("macro-op", SchedulerKind.MACRO_OP)):
        config = MachineConfig.unrestricted_queue(
            scheduler=kind, wakeup_style=WakeupStyle.WIRED_OR)
        processor = Processor(config, trace)
        stats = processor.run()
        results[label] = stats
        line = f"{label:10s} cycles={stats.cycles:5d} IPC={stats.ipc:.3f}"
        if stats.mops_formed:
            line += f"  MOPs formed={stats.mops_formed}"
        print(line)
        if kind is SchedulerKind.MACRO_OP:
            print("\n  MOP pointers detected (head pc -> tail pc):")
            for pc in range(len(program)):
                pointer = processor.pointers.lookup(pc, now=10**9)
                if pointer is not None:
                    print(f"    {pc:3d} -> {pointer.tail_pc:3d}"
                          f"  offset={pointer.offset}"
                          f" control={pointer.control_bit}"
                          f" kind={pointer.kind}")

    base = results["base"].cycles
    two = results["2-cycle"].cycles
    mop = results["macro-op"].cycles
    print()
    print(f"2-cycle scheduling cost {two - base} extra cycles;"
          f" macro-op scheduling won {two - mop} of them back.")


if __name__ == "__main__":
    main()
